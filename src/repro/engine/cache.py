"""Two-tier result cache for evaluation tasks.

Results are cached by the content-addressed keys of
:mod:`repro.engine.keys` in up to two tiers:

* an in-process **memory tier** — a bounded LRU mapping keys to live
  result objects, free to hit, lost at process exit;
* an optional **disk tier** — an append-only JSONL file under the
  configured cache directory, surviving across runs.  Records round-trip
  through :mod:`repro.serialization` via a small codec registry, so a
  restored assessment renders, explains and compares exactly like the
  original.

The disk format is deliberately append-only: concurrent writers can
interleave whole lines without locking, a torn final line is skipped on
load, and "last record wins" makes re-stores idempotent.  All cache
traffic is observable through the ``engine.cache.*`` metrics.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.results import Assessment
from ..exceptions import EngineError, ReproError
from ..obs import get_metrics
from ..serialization import assessment_from_dict, assessment_to_dict


@dataclass(frozen=True)
class Codec:
    """Encodes one family of result values to and from JSON payloads."""

    name: str
    matches: Callable[[Any], bool]
    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any]


_CODECS: "Dict[str, Codec]" = {}


def register_codec(codec: Codec) -> None:
    """Register a result codec (idempotent for an equal re-registration)."""
    existing = _CODECS.get(codec.name)
    if existing is not None and existing is not codec:
        raise EngineError(f"result codec {codec.name!r} is already registered")
    _CODECS[codec.name] = codec


def _find_codec(value: Any) -> Optional[Codec]:
    for codec in _CODECS.values():
        if codec.matches(value):
            return codec
    return None


def _is_assessment_map(value: Any) -> bool:
    return (
        isinstance(value, dict)
        and bool(value)
        and all(isinstance(key, str) for key in value)
        and all(isinstance(item, Assessment) for item in value.values())
    )


def _encode_assessment_map(value: "Dict[str, Assessment]") -> Any:
    return {name: assessment_to_dict(item) for name, item in value.items()}


def _decode_assessment_map(payload: Any) -> "Dict[str, Assessment]":
    return {name: assessment_from_dict(item) for name, item in payload.items()}


#: Evaluation sweeps return ``{scenario: Assessment}`` maps; this codec
#: makes them persistable.
ASSESSMENT_MAP_CODEC = Codec(
    name="assessments",
    matches=_is_assessment_map,
    encode=_encode_assessment_map,
    decode=_decode_assessment_map,
)
register_codec(ASSESSMENT_MAP_CODEC)


class MemoryCache:
    """A bounded LRU over live result objects.

    ``max_entries <= 0`` disables the tier entirely (every operation is
    a cheap no-op), which keeps the engine's default configuration
    bit-identical to the pre-engine serial code paths.
    """

    def __init__(self, max_entries: int):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[Any]:
        if self.max_entries <= 0:
            return None
        try:
            self._entries.move_to_end(key)
        except KeyError:
            return None
        return self._entries[key]

    def put(self, key: str, value: Any) -> None:
        if self.max_entries <= 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)


class DiskCache:
    """The persistent JSONL tier.

    One record per line: ``{"key": ..., "codec": ..., "payload": ...}``.
    The index (key → latest record) loads lazily on first access;
    malformed lines — a torn write from a killed process — are counted
    and skipped, never fatal.
    """

    FILENAME = "results.jsonl"

    def __init__(self, cache_dir: "os.PathLike[str]"):
        self.path = Path(cache_dir) / self.FILENAME
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise EngineError(
                f"cache directory {str(cache_dir)!r} is unusable: {exc}"
            ) from exc
        self._index: "Optional[Dict[str, Dict[str, Any]]]" = None

    def _load_index(self) -> "Dict[str, Dict[str, Any]]":
        if self._index is not None:
            return self._index
        index: "Dict[str, Dict[str, Any]]" = {}
        skipped = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        key = record["key"]
                        if "codec" not in record or "payload" not in record:
                            raise KeyError("codec/payload")
                    except (ValueError, TypeError, KeyError):
                        skipped += 1
                        continue
                    index[key] = record
        if skipped:
            get_metrics().inc("engine.cache.corrupt_records", skipped)
        self._index = index
        return index

    def get(self, key: str) -> Optional[Any]:
        record = self._load_index().get(key)
        if record is None:
            return None
        codec = _CODECS.get(record["codec"])
        if codec is None:
            # Written by a build with codecs this one lacks: miss.
            return None
        try:
            return codec.decode(record["payload"])
        # A record the current model cannot rebuild (schema digest
        # collisions are the only path here) degrades to a miss:
        # ReproError covers the codec's own validation, the rest are
        # the shapes a stale/corrupt JSON payload produces.  A bug in
        # the codec itself must propagate, not masquerade as a miss.
        except (ReproError, ValueError, TypeError, KeyError, AttributeError):
            get_metrics().inc("engine.cache.corrupt_records")
            return None

    def put(self, key: str, value: Any) -> bool:
        """Persist ``value``; returns False when no codec covers it."""
        codec = _find_codec(value)
        if codec is None:
            return False
        record = {"key": key, "codec": codec.name, "payload": codec.encode(value)}
        # No sort_keys: the payload's own key order is meaningful (an
        # assessments map keeps its scenario input order) and already
        # deterministic.
        data = (json.dumps(record) + "\n").encode("utf-8")
        # One O_APPEND write syscall per record: concurrent writers
        # (two engine processes sharing a cache dir) interleave at
        # record granularity, never mid-line, so the last-wins index
        # stays parseable.  A buffered open("a") + write() can flush a
        # large record in several chunks and tear it.
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        if self._index is not None:
            self._index[key] = record
        return True


class ResultCache:
    """The two tiers behind one get/put interface.

    Lookup order is memory then disk; a disk hit is promoted into
    memory so repeated lookups in one process pay the decode cost once.
    Emits ``engine.cache.hits`` / ``engine.cache.misses`` /
    ``engine.cache.disk_hits`` / ``engine.cache.stores``.
    """

    def __init__(
        self,
        memory_entries: int = 0,
        cache_dir: "Optional[os.PathLike[str]]" = None,
    ):
        self.memory = MemoryCache(memory_entries)
        self.disk = DiskCache(cache_dir) if cache_dir is not None else None

    @property
    def enabled(self) -> bool:
        return self.memory.max_entries > 0 or self.disk is not None

    def get(self, key: str) -> "Tuple[bool, Any]":
        """``(hit, value)`` — the flag disambiguates a cached None."""
        metrics = get_metrics()
        value = self.memory.get(key)
        if value is not None:
            metrics.inc("engine.cache.hits")
            return True, value
        if self.disk is not None:
            value = self.disk.get(key)
            if value is not None:
                metrics.inc("engine.cache.hits")
                metrics.inc("engine.cache.disk_hits")
                self.memory.put(key, value)
                return True, value
        metrics.inc("engine.cache.misses")
        return False, None

    def put(self, key: str, value: Any) -> None:
        self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)
        get_metrics().inc("engine.cache.stores")


def temporary_cache_dir() -> str:
    """A fresh disposable cache directory (owned by the caller)."""
    return tempfile.mkdtemp(prefix="repro-engine-cache-")
