"""Parallel, fault-tolerant execution of evaluation tasks.

:func:`map_evaluations` is the one entry point: give it a list of
:class:`EvaluationTask` (or :class:`PortfolioTask`) and an
:class:`EngineConfig`, get back one :class:`TaskOutcome` per task **in
input order** — regardless of the completion order of the workers, so
parallel runs are bit-identical to serial ones.

The execution strategy, in order of preference:

1. **cache** — tasks whose content key has a cached result never run;
2. **inline** — ``workers <= 1`` (the default), no pool, no pickling:
   exactly the code path the serial callers always had;
3. **process pool** — tasks are resolved in the parent (design
   factories are closures and cannot cross a process boundary; the
   built designs can), chunked to amortize dispatch overhead, and
   shipped to a reusable :class:`~concurrent.futures.ProcessPoolExecutor`.

Failure handling mirrors the framework's error taxonomy: a task raising
:class:`~repro.exceptions.ReproError` is a *modeling* outcome (an
infeasible candidate) — reported, never retried.  A worker crash, an
unexpected exception or a per-task timeout is an *execution* failure —
retried with exponential backoff up to ``retries`` times, then reported
as failed.  The sweep as a whole never hangs and never raises for a
single bad task.
"""

from __future__ import annotations

import dataclasses
import pickle
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.evaluate import evaluate_scenarios
from ..core.hierarchy import StorageDesign
from ..core.results import Assessment
from ..exceptions import CacheKeyError, EngineError, ReproError
from ..obs import get_metrics, get_tracer
from ..obs.context import (
    TelemetryCapsule,
    TelemetryCapture,
    TraceContext,
    current_context,
    merge_capsule,
)
from ..obs.progress import get_progress
from ..obs.runs import get_task_log
from ..scenarios.failures import FailureScenario
from ..scenarios.requirements import BusinessRequirements
from ..workload.spec import Workload
from .cache import ResultCache
from .keys import PartMemo, result_digest, task_key

if TYPE_CHECKING:
    from ..portfolio import Portfolio, PortfolioAssessment

#: A design factory: builds a fresh design (fresh devices) per call.
DesignFactory = Any


@dataclass(frozen=True)
class EngineConfig:
    """How a sweep runs.  The default is bit-identical to pre-engine code:
    serial, uncached, no timeouts.

    ``task_timeout`` is wall-clock seconds per task, enforced inside
    worker processes (and only meaningful with ``workers > 1`` — inline
    execution cannot be preempted).  ``chunk_size=None`` picks a chunk
    size that gives each worker a handful of chunks.
    """

    workers: int = 1
    cache_dir: Optional[str] = None
    memory_cache_entries: int = 0
    task_timeout: Optional[float] = None
    retries: int = 2
    retry_backoff: float = 0.05
    chunk_size: Optional[int] = None

    @property
    def caching(self) -> bool:
        return self.memory_cache_entries > 0 or self.cache_dir is not None


@dataclass(frozen=True)
class EvaluationTask:
    """One (design, workload, scenarios, requirements) evaluation.

    The design comes either as a built :class:`StorageDesign` or as a
    zero-argument ``factory`` (the design-space convention: a fresh
    design per evaluation so device demand registries start empty).
    Factories are resolved in the parent process before dispatch.
    """

    name: str
    workload: Workload
    scenarios: Tuple[FailureScenario, ...]
    requirements: BusinessRequirements
    design: Optional[StorageDesign] = None
    factory: Optional[DesignFactory] = field(default=None, compare=False)
    strict_utilization: bool = True

    def resolve(self) -> "EvaluationTask":
        """The same task with the factory (unpicklable) replaced by the
        design it builds (picklable)."""
        if self.design is not None:
            return self if self.factory is None else dataclasses.replace(
                self, factory=None
            )
        if self.factory is None:
            raise EngineError(f"task {self.name!r} has neither design nor factory")
        return dataclasses.replace(self, design=self.factory(), factory=None)

    def key_payload(self) -> "Dict[str, Any]":
        """The cache-key input (call on a *resolved* task)."""
        return {
            "kind": "evaluation",
            "design": self.design,
            "workload": self.workload,
            "scenarios": self.scenarios,
            "requirements": self.requirements,
            "strict_utilization": self.strict_utilization,
        }

    def run(self) -> "Dict[str, Assessment]":
        if self.design is None:
            raise EngineError(f"task {self.name!r} was not resolved before run()")
        return evaluate_scenarios(
            self.design,
            self.workload,
            self.scenarios,
            self.requirements,
            strict_utilization=self.strict_utilization,
        )


@dataclass(frozen=True)
class PortfolioTask:
    """One portfolio evaluation (several data objects on shared devices).

    Portfolios aggregate live device state and are evaluated inline in
    the parent — they are few (one per scenario) while design sweeps
    are many, so they gain nothing from shipping across processes.
    """

    name: str
    portfolio: "Portfolio"
    scenario: FailureScenario
    requirements: BusinessRequirements
    strict_utilization: bool = True

    def resolve(self) -> "PortfolioTask":
        return self

    def key_payload(self) -> "Dict[str, Any]":
        return {
            "kind": "portfolio",
            "portfolio": self.portfolio,
            "scenario": self.scenario,
            "requirements": self.requirements,
            "strict_utilization": self.strict_utilization,
        }

    def run(self) -> "PortfolioAssessment":
        return self.portfolio.evaluate(
            self.scenario,
            self.requirements,
            strict_utilization=self.strict_utilization,
        )


EngineTask = Union[EvaluationTask, PortfolioTask]


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task.

    Exactly one of ``value`` / ``error`` is meaningful: ``error`` is
    None on success.  ``retryable`` distinguishes execution failures
    (worker crash, timeout — retried before landing here) from modeling
    outcomes (:class:`~repro.exceptions.ReproError` — the task *ran*,
    the candidate is infeasible).
    """

    name: str
    value: Any = None
    error: Optional[BaseException] = None
    cached: bool = False
    attempts: int = 1
    retryable: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


class _TaskTimeout(Exception):
    """Internal: a task exceeded the per-task timeout inside a worker."""


def _run_with_timeout(task: EngineTask, timeout: Optional[float]) -> Any:
    """Run one task, preempting it after ``timeout`` seconds.

    Uses ``SIGALRM``/``setitimer``, which only works on the main thread
    of a process — exactly where pool workers run tasks.  Called on any
    other thread (or with no timeout), it runs the task unguarded.
    """
    if timeout is None or threading.current_thread() is not threading.main_thread():
        return task.run()

    def _on_alarm(signum: int, frame: Any) -> None:
        raise _TaskTimeout(f"task {task.name!r} exceeded {timeout:g}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return task.run()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_one(
    task: EngineTask, timeout: Optional[float]
) -> "Tuple[str, Any, Optional[BaseException], bool]":
    """``(name, value, error, retryable)`` for one task, never raising."""
    try:
        return task.name, _run_with_timeout(task, timeout), None, False
    except ReproError as exc:
        return task.name, None, exc, False
    except _TaskTimeout as exc:
        return task.name, None, exc, True
    except Exception as exc:  # lint: allow-broad-except
        # An unexpected bug in the model: transported to the parent as
        # a failed outcome instead of poisoning the whole pool.
        return task.name, None, exc, True


def _execute_one_traced(
    task: EngineTask, timeout: Optional[float]
) -> "Tuple[str, Any, Optional[BaseException], bool]":
    """:func:`_execute_one` wrapped in an ``engine.task`` span.

    The wrapper span exists in *both* the serial inline path and the
    worker-side chunk path, so a merged parallel trace has the same
    span structure as a serial one (the byte-stability contract
    ``repro.obs.profile.span_skeleton`` checks).  ``_execute_one``
    never raises, so failures are recorded as attributes here.
    """
    with get_tracer().span("engine.task", task=task.name) as span:
        row = _execute_one(task, timeout)
        error = row[2]
        if error is not None:
            span.set(
                error_type=type(error).__name__, error_message=str(error)
            )
    return row


def _execute_chunk(  # lint: worker-boundary
    tasks: "List[EngineTask]",
    timeout: Optional[float],
    ctx: Optional[TraceContext] = None,
) -> "Tuple[List[Tuple[str, Any, Optional[BaseException], bool]], Optional[TelemetryCapsule]]":
    """The unit of work shipped to a pool worker.

    With a :class:`~repro.obs.context.TraceContext`, the worker
    installs a capturing tracer/registry for the chunk and returns
    everything it recorded as a telemetry capsule alongside the rows;
    without one (telemetry off in the parent) capture is skipped
    entirely and the capsule is None.
    """
    if ctx is None or not ctx.enabled:
        return [_execute_one(task, timeout) for task in tasks], None
    capture = TelemetryCapture(ctx)
    try:
        rows = [_execute_one_traced(task, timeout) for task in tasks]
    finally:
        capsule = capture.finish()
    return rows, capsule


# One pool per worker count, reused across sweeps: fork+import costs far
# more than a typical sweep, so per-call pools would erase the speedup.
_POOL: "Optional[ProcessPoolExecutor]" = None
_POOL_WORKERS: int = 0
_POOL_LOCK = threading.Lock()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS != workers:
            if _POOL is not None:
                _POOL.shutdown(wait=False, cancel_futures=True)
            _POOL = ProcessPoolExecutor(max_workers=workers)
            _POOL_WORKERS = workers
        return _POOL


def warm_pool(workers: int) -> None:
    """Pre-fork the shared pool so the first sweep doesn't pay for it.

    Waits for every worker to come up (each runs a trivial task), so a
    benchmark's timed region measures evaluation, not process start.
    """
    if workers <= 1:
        return
    pool = _get_pool(workers)
    for future in [pool.submit(int, 0) for _ in range(workers)]:
        future.result()


def shutdown_pool() -> None:
    """Tear down the shared worker pool (tests and atexit paths)."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
            _POOL = None
            _POOL_WORKERS = 0


def _discard_pool() -> None:
    """Drop a broken pool so the next ``_get_pool`` builds a fresh one."""
    shutdown_pool()


def _pickles(task: EngineTask) -> bool:
    try:
        pickle.dumps(task)
        return True
    except Exception:  # lint: allow-broad-except
        # pickle raises anything the object's reduction raises; any
        # failure means "run this one inline".
        return False


def _chunked(
    items: "List[Tuple[int, EngineTask]]", size: int
) -> "List[List[Tuple[int, EngineTask]]]":
    return [items[start : start + size] for start in range(0, len(items), size)]


def _retry_inline(
    task: EngineTask, config: EngineConfig, first_error: BaseException
) -> TaskOutcome:
    """Re-run a failed task in the parent with exponential backoff."""
    metrics = get_metrics()
    progress = get_progress()
    error: BaseException = first_error
    attempts = 1
    while attempts <= config.retries:
        time.sleep(config.retry_backoff * (2 ** (attempts - 1)))
        metrics.inc("engine.retries")
        progress.advance(retries=1)
        attempts += 1
        # Keep enforcing the per-task timeout (works on the parent's
        # main thread too): a genuinely hung task must never block the
        # sweep just because its worker died first.
        name, value, error_now, retryable = _execute_one(task, config.task_timeout)
        if error_now is None:
            return TaskOutcome(name=name, value=value, attempts=attempts)
        error = error_now
        if not retryable:
            return TaskOutcome(
                name=name, error=error, attempts=attempts, retryable=False
            )
    return TaskOutcome(
        name=task.name, error=error, attempts=attempts, retryable=True
    )


def _run_pool(
    pending: "List[Tuple[int, EngineTask]]",
    config: EngineConfig,
    outcomes: "List[Optional[TaskOutcome]]",
) -> None:
    """Execute ``(index, task)`` pairs on the pool, filling ``outcomes``.

    Tasks in a chunk whose worker dies or whose chunk blows the parent
    budget are retried *individually inline* — correctness first; the
    pool keeps serving the healthy chunks.
    """
    metrics = get_metrics()
    progress = get_progress()
    workers = min(config.workers, len(pending))
    chunk_size = config.chunk_size
    if chunk_size is None:
        # Aim for ~4 chunks per worker so stragglers rebalance.
        chunk_size = max(1, len(pending) // (workers * 4) or 1)
    chunks = _chunked(pending, chunk_size)
    metrics.inc("engine.chunks", len(chunks))

    budget: Optional[float] = None
    if config.task_timeout is not None:
        budget = config.task_timeout * chunk_size + 5.0

    # One context describes the whole sweep; workers capture telemetry
    # only when the parent has live instruments.
    ctx = current_context()

    pool = _get_pool(workers)
    futures = []
    for chunk in chunks:
        tasks = [task for _, task in chunk]
        futures.append(
            (chunk, pool.submit(_execute_chunk, tasks, config.task_timeout, ctx))
        )

    # Futures are consumed in submission order (= input order), so
    # capsule merges — and therefore gauge last-writes and the merged
    # span skeleton — are deterministic and match a serial run.
    for chunk, future in futures:
        try:
            rows, capsule = future.result(timeout=budget)
        except (BrokenProcessPool, FutureTimeoutError, OSError) as exc:
            # The whole chunk is suspect: drop the pool and redo each
            # task inline with retries.
            _discard_pool()
            chunk_failed = 0
            for index, task in chunk:
                outcomes[index] = _retry_inline(task, config, exc)
                outcome = outcomes[index]
                if outcome is not None and outcome.error is not None:
                    chunk_failed += 1
            progress.advance(done=len(chunk), failed=chunk_failed)
            continue
        if capsule is not None:
            merge_capsule(capsule)
        chunk_failed = 0
        for (index, task), (name, value, error, retryable) in zip(chunk, rows):
            if error is None:
                outcomes[index] = TaskOutcome(name=name, value=value)
            elif retryable and config.retries > 0:
                outcomes[index] = _retry_inline(task, config, error)
            else:
                outcomes[index] = TaskOutcome(
                    name=name, error=error, retryable=retryable
                )
            resolved_outcome = outcomes[index]
            if resolved_outcome is not None and resolved_outcome.error is not None:
                chunk_failed += 1
        progress.advance(done=len(chunk), failed=chunk_failed)


def _record_failures(
    map_span: Any,
    outcomes: "List[Optional[TaskOutcome]]",
    keys: "List[Optional[str]]",
) -> None:
    """Count failed outcomes and attach diagnosis records to the sweep span.

    Each failed task contributes to ``engine.tasks_failed`` and to a
    per-exception-type ``engine.tasks_failed.<Type>`` counter, and a
    compact record (task name, cache key, error, attempts) lands on the
    ``engine.map`` span — which the run ledger persists to
    ``spans.jsonl``, so a failed sweep can be diagnosed post-hoc
    without re-running it.
    """
    metrics = get_metrics()
    failures: "List[Dict[str, Any]]" = []
    for index, outcome in enumerate(outcomes):
        if outcome is None or outcome.error is None:
            continue
        error_type = type(outcome.error).__name__
        metrics.inc("engine.tasks_failed")
        metrics.inc(f"engine.tasks_failed.{error_type}")
        failures.append(
            {
                "task": outcome.name,
                "key": keys[index],
                "error_type": error_type,
                "error": str(outcome.error),
                "attempts": outcome.attempts,
                "retryable": outcome.retryable,
            }
        )
    if failures:
        map_span.set(failed=len(failures), failures=failures)


def map_evaluations(
    tasks: "Sequence[EngineTask]",
    config: Optional[EngineConfig] = None,
    cache: Optional[ResultCache] = None,
    label: str = "sweep",
) -> "List[TaskOutcome]":
    """Run every task; return one outcome per task, in input order.

    The workhorse behind ``optimize``, ``run_whatif``, sensitivity
    sweeps and the CLI.  Never raises for a task-level failure — check
    each outcome's ``error``.  Pass an explicit ``cache`` to share one
    across calls; otherwise a cache is built from the config (and the
    memory tier then lives only for this call).  ``label`` names the
    sweep in progress reports (``[designs] 37/120 ...``).
    """
    config = config or EngineConfig()
    metrics = get_metrics()
    tracer = get_tracer()
    progress = get_progress()
    task_log = get_task_log()
    metrics.set_gauge("engine.workers", config.workers)
    metrics.inc("engine.tasks", len(tasks))

    if cache is None and config.caching:
        cache = ResultCache(
            memory_entries=config.memory_cache_entries,
            cache_dir=config.cache_dir,
        )

    progress.begin(len(tasks), label=label)
    with tracer.span(
        "engine.map", tasks=len(tasks), workers=config.workers
    ) as map_span:
        outcomes: "List[Optional[TaskOutcome]]" = [None] * len(tasks)
        keys: "List[Optional[str]]" = [None] * len(tasks)
        pending: "List[Tuple[int, EngineTask]]" = []
        # Shared payload parts (one workload, one scenario tuple) are
        # digested once for the whole sweep, not once per task.
        memo: PartMemo = {}

        cache_hits = 0
        resolve_failures = 0
        # Keys are needed by the cache and by the run observatory's
        # task log (which joins two runs' work items by content key),
        # so they are computed whenever either consumer is live.
        want_keys = cache is not None or task_log.enabled
        for index, task in enumerate(tasks):
            try:
                resolved = task.resolve()
            except ReproError as exc:
                # A factory that cannot even build its design is a
                # modeling outcome, same as an evaluation-time one.
                outcomes[index] = TaskOutcome(name=task.name, error=exc)
                resolve_failures += 1
                continue
            if want_keys:
                try:
                    key = task_key(resolved.key_payload(), memo)
                except CacheKeyError:
                    metrics.inc("engine.cache.unkeyable")
                    key = None
                if key is not None:
                    keys[index] = key
                    if cache is not None:
                        hit, value = cache.get(key)
                        if hit:
                            outcomes[index] = TaskOutcome(
                                name=task.name, value=value, cached=True
                            )
                            cache_hits += 1
                            continue
            pending.append((index, resolved))
        if cache_hits or resolve_failures:
            progress.advance(
                done=cache_hits + resolve_failures,
                cached=cache_hits,
                failed=resolve_failures,
            )

        if pending:
            if config.workers <= 1:
                for index, resolved in pending:
                    name, value, error, retryable = _execute_one_traced(
                        resolved, None
                    )
                    outcomes[index] = TaskOutcome(
                        name=name, value=value, error=error, retryable=retryable
                    )
                    progress.advance(done=1, failed=1 if error is not None else 0)
            else:
                parallel: "List[Tuple[int, EngineTask]]" = []
                inline: "List[Tuple[int, EngineTask]]" = []
                for pair in pending:
                    (parallel if _pickles(pair[1]) else inline).append(pair)
                if inline:
                    metrics.inc("engine.tasks_inline", len(inline))
                    for index, resolved in inline:
                        name, value, error, retryable = _execute_one_traced(
                            resolved, None
                        )
                        outcomes[index] = TaskOutcome(
                            name=name, value=value, error=error, retryable=retryable
                        )
                        progress.advance(
                            done=1, failed=1 if error is not None else 0
                        )
                if parallel:
                    _run_pool(parallel, config, outcomes)

        if cache is not None:
            for index, outcome in enumerate(outcomes):
                if (
                    outcome is not None
                    and outcome.ok
                    and not outcome.cached
                    and keys[index] is not None
                ):
                    key = keys[index]
                    assert key is not None
                    cache.put(key, outcome.value)

        _record_failures(map_span, outcomes, keys)
        if task_log.enabled:
            # One record per task, in input order: the manifest's
            # ``tasks`` field, joining this run to any other run of the
            # same work by content key and separating correctness drift
            # from performance drift by result digest.
            for index, outcome in enumerate(outcomes):
                if outcome is None:
                    continue
                task_log.record(
                    task=outcome.name,
                    label=label,
                    key=keys[index],
                    digest=result_digest(outcome.value) if outcome.ok else None,
                    cached=outcome.cached,
                    ok=outcome.ok,
                    error_type=(
                        None
                        if outcome.error is None
                        else type(outcome.error).__name__
                    ),
                    attempts=outcome.attempts,
                )
        final = [outcome for outcome in outcomes if outcome is not None]
        if len(final) != len(tasks):
            raise EngineError("engine lost track of a task outcome")
    progress.finish()
    return final
