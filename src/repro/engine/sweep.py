"""High-level sweep helpers on top of :func:`map_evaluations`.

The design-automation layers all share one shape of work — "evaluate
each of these designs against these scenarios" — differing only in how
the designs are named and what they do with the outcomes.  These
helpers capture that shape once so ``optimize``, ``run_whatif``, the
sensitivity sweeps and the CLI stay thin.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..core.hierarchy import StorageDesign
from ..core.results import Assessment
from ..scenarios.failures import FailureScenario
from ..scenarios.requirements import BusinessRequirements
from ..workload.spec import Workload
from .cache import ResultCache
from .executor import EngineConfig, EvaluationTask, TaskOutcome, map_evaluations

#: Designs arrive either built or as zero-argument factories.
DesignOrFactory = Union[StorageDesign, Callable[[], StorageDesign]]


def _as_task(
    name: str,
    design: DesignOrFactory,
    workload: Workload,
    scenarios: "Tuple[FailureScenario, ...]",
    requirements: BusinessRequirements,
    strict_utilization: bool,
) -> EvaluationTask:
    if isinstance(design, StorageDesign):
        return EvaluationTask(
            name=name,
            workload=workload,
            scenarios=scenarios,
            requirements=requirements,
            design=design,
            strict_utilization=strict_utilization,
        )
    return EvaluationTask(
        name=name,
        workload=workload,
        scenarios=scenarios,
        requirements=requirements,
        factory=design,
        strict_utilization=strict_utilization,
    )


def evaluate_design_map(
    designs: "Mapping[str, DesignOrFactory]",
    workload: Workload,
    scenarios: "Iterable[FailureScenario]",
    requirements: BusinessRequirements,
    config: Optional[EngineConfig] = None,
    cache: Optional[ResultCache] = None,
    strict_utilization: bool = True,
    label: str = "designs",
) -> "Dict[str, TaskOutcome]":
    """Evaluate every named design against every scenario.

    Returns ``{name: outcome}`` in the mapping's iteration order; a
    successful outcome's ``value`` is the ``{scenario: Assessment}``
    dict of :func:`repro.core.evaluate.evaluate_scenarios`.  ``label``
    names the sweep in live progress reports.
    """
    scenario_tuple = tuple(scenarios)
    tasks = [
        _as_task(
            name, design, workload, scenario_tuple, requirements, strict_utilization
        )
        for name, design in designs.items()
    ]
    outcomes = map_evaluations(tasks, config=config, cache=cache, label=label)
    return {outcome.name: outcome for outcome in outcomes}


def evaluate_scenarios_cached(
    design: DesignOrFactory,
    workload: Workload,
    scenarios: "Iterable[FailureScenario]",
    requirements: BusinessRequirements,
    config: Optional[EngineConfig] = None,
    cache: Optional[ResultCache] = None,
    strict_utilization: bool = True,
) -> "Dict[str, Assessment]":
    """Single-design evaluation through the engine (the CLI path).

    Cache-aware like the sweep form, but raises the underlying error on
    failure — callers evaluating one design want the exception, not an
    outcome to inspect.
    """
    name = design.name if isinstance(design, StorageDesign) else "design"
    outcomes = evaluate_design_map(
        {name: design},
        workload,
        scenarios,
        requirements,
        config=config,
        cache=cache,
        strict_utilization=strict_utilization,
        label="evaluate",
    )
    outcome = outcomes[name]
    if outcome.error is not None:
        raise outcome.error
    value: "Dict[str, Any]" = outcome.value
    return value
