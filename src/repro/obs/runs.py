"""The run observatory's index: many run ledgers under one root.

A :class:`RunStore` treats a directory (``--runs-root``) whose
subdirectories are :class:`~repro.obs.ledger.RunLedger` outputs as a
queryable index of past runs: list and filter by command, status or
schema version, resolve a run by ID (or unique ID prefix, or directory
name), pick the latest, and garbage-collect old runs.  Directories
whose manifest cannot be parsed are *skipped and counted* — one torn
run must never hide the healthy ones.

A :class:`RunRecord` is one loaded run.  It reads everything from the
manifest when the manifest carries it (schema v2: span rollups, metric
snapshot, task records) and falls back to re-deriving the same views
from the raw artifacts for pre-v2 ledgers — ``spans.jsonl`` for the
span rollup, ``metrics.prom`` for counters — so ``repro runs
list``/``show``/``diff`` work on every ledger ever written.

:class:`TaskLog` is the bridge from the evaluation engine: installed
process-globally (same injectable idiom as the tracer and progress
reporter), it collects one record per sweep task — name, content-
addressed task key, result digest, cache disposition — which the CLI
hands to :meth:`RunLedger.finish` for the manifest's ``tasks`` field.
Task keys join two runs' work items; result digests then separate
*correctness drift* (same key, different digest) from mere performance
drift (:mod:`repro.obs.diff`).
"""

from __future__ import annotations

import os
import shutil
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..exceptions import ReproError
from .export import read_trace_jsonl
from .ledger import ManifestError, RunLedger, read_manifest


class RunLookupError(ReproError, LookupError):
    """A run token matched no run (or ambiguously matched several)."""


# ---------------------------------------------------------------------------
# The engine-side task log.
# ---------------------------------------------------------------------------


class NullTaskLog:
    """The disabled task log: every record is discarded."""

    enabled = False

    def record(self, **fields: Any) -> None:
        """Ignore one task record."""

    @property
    def records(self) -> "List[Dict[str, Any]]":
        """Always empty."""
        return []


#: The process-wide default: task logging disabled.
NULL_TASK_LOG = NullTaskLog()


class TaskLog:
    """Collects the engine's per-task records for the run manifest.

    One record per sweep task, in sweep submission order::

        {"task": ..., "label": ..., "key": ..., "digest": ...,
         "cached": ..., "ok": ..., "error_type": ..., "attempts": ...}

    ``key`` is the engine's content-addressed task key (None when the
    task is unkeyable), ``digest`` the content digest of the result
    (None on failure or for undigestable result types).  The engine
    records through the process-global instance (:func:`get_task_log`),
    the CLI drains :attr:`records` into the ledger manifest.
    """

    enabled = True

    def __init__(self) -> None:
        self._records: "List[Dict[str, Any]]" = []

    def record(self, **fields: Any) -> None:
        """Append one task record."""
        self._records.append(fields)

    @property
    def records(self) -> "List[Dict[str, Any]]":
        """The collected records, in recording order."""
        return list(self._records)


_CURRENT_TASK_LOG: "Union[NullTaskLog, TaskLog]" = NULL_TASK_LOG


def get_task_log() -> "Union[NullTaskLog, TaskLog]":
    """The current process-global task log (no-op unless installed)."""
    return _CURRENT_TASK_LOG


def set_task_log(log: Optional[TaskLog]) -> "Union[NullTaskLog, TaskLog]":
    """Install ``log`` globally (``None`` restores the no-op default)."""
    global _CURRENT_TASK_LOG
    _CURRENT_TASK_LOG = NULL_TASK_LOG if log is None else log
    return _CURRENT_TASK_LOG


@contextmanager
def use_task_log(
    log: Optional[TaskLog],
) -> "Iterator[Union[NullTaskLog, TaskLog]]":
    """Install a task log for the duration of a ``with`` block."""
    previous = _CURRENT_TASK_LOG
    installed = set_task_log(log)
    try:
        yield installed
    finally:
        set_task_log(previous if isinstance(previous, TaskLog) else None)


# ---------------------------------------------------------------------------
# Loaded runs.
# ---------------------------------------------------------------------------


class _PathAccumulator:
    """Mutable name-path node used when re-rolling v1 span streams."""

    __slots__ = ("name", "calls", "cum_ms", "errors", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.cum_ms = 0.0
        self.errors = 0
        self.children: "Dict[str, _PathAccumulator]" = {}

    def freeze(self) -> "Dict[str, Any]":
        children = [
            child.freeze()
            for child in sorted(self.children.values(), key=lambda c: -c.cum_ms)
        ]
        child_cum = sum(child.cum_ms for child in self.children.values())
        return {
            "name": self.name,
            "calls": self.calls,
            "cum_ms": round(self.cum_ms, 6),
            "self_ms": round(max(self.cum_ms - child_cum, 0.0), 6),
            "errors": self.errors,
            "children": children,
        }


def _rollup_from_span_records(
    records: "List[Dict[str, Any]]",
) -> "Dict[str, Any]":
    """Rebuild a manifest-v2-shaped ``rollup`` from raw span records.

    The records are ``spans.jsonl`` lines: depth-first order with a
    ``depth`` field, so the tree structure is recoverable from depth
    alone.  Produces the same shape :func:`repro.obs.ledger.span_rollup`
    writes, so the diff layer never cares which path the data took.
    """
    roots: "Dict[str, _PathAccumulator]" = {}
    flat: "Dict[str, Dict[str, Any]]" = {}
    stack: "List[_PathAccumulator]" = []
    span_count = 0
    total_ms = 0.0
    for record in records:
        if record.get("kind") not in (None, "span") or "depth" not in record:
            continue
        span_count += 1
        name = str(record.get("name", "?"))
        depth = int(record["depth"])
        duration = float(record.get("duration_ms") or 0.0)
        failed = 1 if record.get("status") == "error" else 0
        del stack[depth:]
        siblings = stack[-1].children if stack else roots
        node = siblings.get(name)
        if node is None:
            node = siblings[name] = _PathAccumulator(name)
        node.calls += 1
        node.cum_ms += duration
        node.errors += failed
        stack.append(node)
        if depth == 0:
            total_ms += duration
        entry = flat.setdefault(
            name, {"calls": 0, "cum_ms": 0.0, "self_ms": 0.0, "errors": 0}
        )
        entry["calls"] += 1
        entry["cum_ms"] = round(float(entry["cum_ms"]) + duration, 6)
        entry["errors"] += failed
    # Self time per name: cumulative minus the direct children, summed
    # over the merged tree (equal to per-instance self time summed).
    tree = [
        node.freeze()
        for node in sorted(roots.values(), key=lambda n: -n.cum_ms)
    ]

    def _collect_self(node: "Dict[str, Any]") -> None:
        entry = flat[node["name"]]
        entry["self_ms"] = round(float(entry["self_ms"]) + node["self_ms"], 6)
        for child in node["children"]:
            _collect_self(child)

    for node in tree:
        _collect_self(node)
    return {
        "spans": flat,
        "tree": tree,
        "total_ms": round(total_ms, 6),
        "span_count": span_count,
    }


def _parse_prom_metrics(text: str) -> "Dict[str, Any]":
    """Counters/gauges/histogram summaries from an OpenMetrics file.

    The v1 fallback: pre-v2 manifests carry no ``metrics`` snapshot, so
    the run's final counters are recovered from ``metrics.prom``.  Only
    the shapes :func:`repro.obs.export.openmetrics_text` emits are
    recognised; names stay in their sanitized (underscore) form.
    """
    counters: "Dict[str, float]" = {}
    gauges: "Dict[str, float]" = {}
    histograms: "Dict[str, Dict[str, Any]]" = {}
    kinds: "Dict[str, str]" = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3]
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            continue
        try:
            value = float(value_part)
        except ValueError:
            continue
        base = name_part.split("{", 1)[0]
        if base.endswith("_total") and kinds.get(base[: -len("_total")]) == "counter":
            counters[base[: -len("_total")]] = value
        elif kinds.get(base) == "gauge":
            gauges[base] = value
        elif base.endswith("_sum") and kinds.get(base[: -len("_sum")]) == "histogram":
            histograms.setdefault(base[: -len("_sum")], {})["total"] = value
        elif base.endswith("_count") and kinds.get(base[: -len("_count")]) == "histogram":
            histograms.setdefault(base[: -len("_count")], {})["count"] = value
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


class RunRecord:
    """One loaded run ledger: the manifest plus lazy artifact views.

    Every accessor prefers the manifest's v2 enrichment fields and
    falls back to the raw artifacts for older ledgers; all fall-backs
    tolerate missing or empty artifact files (a crashed run may have
    written nothing but its ``begin`` manifest).
    """

    def __init__(self, directory: str, manifest: "Dict[str, Any]") -> None:
        self.directory = directory
        self.manifest = manifest
        self._rollup: "Optional[Dict[str, Any]]" = None
        self._metrics: "Optional[Dict[str, Any]]" = None

    @classmethod
    def load(cls, directory: "Union[str, os.PathLike]") -> "RunRecord":
        """Load the run at ``directory`` (raises :class:`ManifestError`)."""
        path = os.fspath(directory)
        return cls(path, read_manifest(path))

    # -- identification -------------------------------------------------------

    @property
    def run_id(self) -> str:
        return str(self.manifest.get("run_id", os.path.basename(self.directory)))

    @property
    def command(self) -> Optional[str]:
        value = self.manifest.get("command")
        return None if value is None else str(value)

    @property
    def status(self) -> str:
        return str(self.manifest.get("status", "unknown"))

    @property
    def started(self) -> str:
        return str(self.manifest.get("started", ""))

    @property
    def wall_time_s(self) -> Optional[float]:
        value = self.manifest.get("wall_time_s")
        return None if value is None else float(value)

    @property
    def manifest_schema(self) -> int:
        """The manifest layout version (pre-observatory ledgers are 1)."""
        return int(self.manifest.get("manifest_schema", 1))

    @property
    def model_schema_version(self) -> Optional[str]:
        value = self.manifest.get("model_schema_version")
        return None if value is None else str(value)

    # -- artifact views -------------------------------------------------------

    def rollup(self) -> "Dict[str, Any]":
        """Per-span-name timings + merged path tree (manifest or rebuilt)."""
        if self._rollup is None:
            stored = self.manifest.get("rollup")
            if isinstance(stored, dict):
                self._rollup = stored
            else:
                self._rollup = _rollup_from_span_records(self._span_records())
        return self._rollup

    def span_stats(self) -> "Dict[str, Dict[str, Any]]":
        """Flat per-span-name stats: calls, cum_ms, self_ms, errors."""
        spans = self.rollup().get("spans", {})
        return spans if isinstance(spans, dict) else {}

    def tree(self) -> "List[Dict[str, Any]]":
        """The merged name-path call tree (roots first)."""
        tree = self.rollup().get("tree", [])
        return tree if isinstance(tree, list) else []

    def tasks(self) -> "List[Dict[str, Any]]":
        """The engine's task records ([] for pre-v2 or non-sweep runs)."""
        tasks = self.manifest.get("tasks", [])
        return tasks if isinstance(tasks, list) else []

    def metrics(self) -> "Dict[str, Any]":
        """Counters/gauges/histograms (manifest snapshot or .prom parse)."""
        if self._metrics is None:
            stored = self.manifest.get("metrics")
            if isinstance(stored, dict):
                self._metrics = stored
            else:
                self._metrics = self._metrics_from_prom()
        return self._metrics

    def heartbeats(self) -> "List[Dict[str, Any]]":
        """The progress heartbeats ([] when the file is missing/empty)."""
        path = os.path.join(self.directory, RunLedger.PROGRESS)
        if not os.path.exists(path):
            return []
        try:
            return read_trace_jsonl(path)
        except (OSError, ValueError):
            return []

    # -- internals ------------------------------------------------------------

    def _span_records(self) -> "List[Dict[str, Any]]":
        path = os.path.join(self.directory, RunLedger.SPANS)
        if not os.path.exists(path):
            return []
        try:
            return read_trace_jsonl(path)
        except (OSError, ValueError):
            return []

    def _metrics_from_prom(self) -> "Dict[str, Any]":
        path = os.path.join(self.directory, RunLedger.METRICS)
        if not os.path.exists(path):
            return {"counters": {}, "gauges": {}, "histograms": {}}
        try:
            text = open(path).read()
        except OSError:
            return {"counters": {}, "gauges": {}, "histograms": {}}
        return _parse_prom_metrics(text)


# ---------------------------------------------------------------------------
# The store.
# ---------------------------------------------------------------------------


class RunStore:
    """Indexes every run ledger directly under one root directory.

    ``scan`` (and everything built on it) loads each subdirectory that
    contains a ``manifest.json``; unparseable manifests are recorded on
    :attr:`skipped` as ``(directory, reason)`` pairs and never abort
    the listing.  Runs sort oldest-first by start stamp (run IDs break
    ties — they embed the mint time, so the order is stable).
    """

    def __init__(self, root: "Union[str, os.PathLike]") -> None:
        self.root = os.fspath(root)
        self.skipped: "List[Tuple[str, str]]" = []

    def scan(self) -> "List[RunRecord]":
        """Load every run under the root, oldest first."""
        self.skipped = []
        records: "List[RunRecord]" = []
        if not os.path.isdir(self.root):
            return records
        for entry in sorted(os.listdir(self.root)):
            directory = os.path.join(self.root, entry)
            if not os.path.isdir(directory):
                continue
            if not os.path.exists(os.path.join(directory, RunLedger.MANIFEST)):
                continue
            try:
                records.append(RunRecord.load(directory))
            except ManifestError as exc:
                self.skipped.append((directory, str(exc)))
        records.sort(key=lambda record: (record.started, record.run_id))
        return records

    def list(
        self,
        command: Optional[str] = None,
        status: Optional[str] = None,
        schema: Optional[str] = None,
    ) -> "List[RunRecord]":
        """Scan, then filter by command, status and/or schema version.

        ``schema`` matches either the manifest schema number (``"2"``)
        or a prefix of the model schema version (``"engine-v1"`` or a
        full ``engine-v1:<digest>`` — prefix matching makes pinning a
        digest fragment convenient).
        """
        records = self.scan()
        if command is not None:
            records = [r for r in records if r.command == command]
        if status is not None:
            records = [r for r in records if r.status == status]
        if schema is not None:
            records = [
                r
                for r in records
                if str(r.manifest_schema) == schema
                or (
                    r.model_schema_version is not None
                    and r.model_schema_version.startswith(schema)
                )
            ]
        return records

    def latest(self, command: Optional[str] = None) -> "Optional[RunRecord]":
        """The most recently started run (optionally of one command)."""
        records = self.list(command=command)
        return records[-1] if records else None

    def find(self, token: str) -> RunRecord:
        """Resolve ``token`` to one run: directory name, run ID, or a
        unique run-ID prefix.  Raises :class:`RunLookupError` when the
        token matches nothing or more than one run."""
        records = self.scan()
        exact = [
            r
            for r in records
            if r.run_id == token or os.path.basename(r.directory) == token
        ]
        if len(exact) == 1:
            return exact[0]
        if len(exact) > 1:
            raise RunLookupError(
                f"run token {token!r} matches {len(exact)} runs under "
                f"{self.root!r} — use the full directory path"
            )
        prefixed = [r for r in records if r.run_id.startswith(token)]
        if len(prefixed) == 1:
            return prefixed[0]
        if len(prefixed) > 1:
            matches = ", ".join(r.run_id for r in prefixed[:5])
            raise RunLookupError(
                f"run token {token!r} is ambiguous under {self.root!r}: "
                f"{matches}"
            )
        raise RunLookupError(
            f"no run matching {token!r} under {self.root!r} "
            f"({len(records)} runs indexed, {len(self.skipped)} skipped)"
        )

    def gc(self, keep: int) -> "List[RunRecord]":
        """Delete all but the newest ``keep`` runs; returns the removed.

        Runs whose manifest still says ``running`` are never deleted —
        they may belong to a live process (a crashed run that never
        finished shows the same status; re-run ``gc`` after enough new
        runs pile up, or remove the directory by hand).
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        records = self.scan()
        removable = [r for r in records if r.status != "running"]
        excess = len(removable) - keep
        removed: "List[RunRecord]" = []
        for record in removable:
            if len(removed) >= excess:
                break
            shutil.rmtree(record.directory, ignore_errors=True)
            removed.append(record)
        return removed


def resolve_run(
    token: str, root: "Optional[Union[str, os.PathLike]]" = None
) -> RunRecord:
    """Resolve a CLI run argument: a ledger directory path, or a run
    ID / directory name / unique ID prefix under ``root``."""
    if os.path.isdir(token) and os.path.exists(
        os.path.join(token, RunLedger.MANIFEST)
    ):
        return RunRecord.load(token)
    if root is None:
        raise RunLookupError(
            f"{token!r} is not a run ledger directory and no --runs-root "
            "was given to resolve it against"
        )
    return RunStore(root).find(token)
