"""Cross-process trace context and the worker telemetry capsule.

The process pool in :mod:`repro.engine.executor` runs tasks in child
processes, where the parent's tracer and metrics registry do not
exist: every span, counter and histogram sample recorded there would
be silently dropped.  This module closes that gap with three pieces:

* :class:`TraceContext` — the compact, picklable description of the
  parent's telemetry state that rides along with each dispatched task
  chunk: the run ID, which instruments are live, and the parent
  tracer's clock at dispatch (so worker span times can be rebased
  onto the parent's timeline);
* :class:`TelemetryCapture` / :class:`TelemetryCapsule` — the worker
  side.  ``TelemetryCapture(ctx)`` installs a fresh tracer/registry
  for the duration of a chunk; ``finish()`` uninstalls them and packs
  everything recorded — span trees, metric deltas, the worker PID —
  into a :class:`TelemetryCapsule`, which is returned to the parent
  alongside the chunk's results;
* :func:`merge_capsule` — the parent side: worker span roots are
  adopted under the currently open span (tagged with the worker's
  ``pid`` and rebased by the dispatch-time offset), counter deltas
  are summed into the parent registry, histogram buckets merged, and
  gauges applied in chunk order (which is submission order, so the
  final gauge value matches a serial run).

Run IDs name one end-to-end invocation (one CLI run, one ledger
directory).  :func:`get_run_id` mints one lazily; the CLI installs
the ledger's ID via :func:`set_run_id` so capsules, heartbeats and
artifacts all agree.
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .metrics import MetricsRegistry, get_metrics, set_metrics
from .spans import PackedSpan, Span, pack_span, unpack_span
from .tracer import Tracer, get_tracer, set_tracer

_RUN_ID: Optional[str] = None


def new_run_id() -> str:
    """A fresh, sortable, collision-resistant run identifier."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid():x}-{uuid.uuid4().hex[:8]}"


def get_run_id() -> str:
    """The current process-wide run ID (minted on first use)."""
    global _RUN_ID
    if _RUN_ID is None:
        _RUN_ID = new_run_id()
    return _RUN_ID


def set_run_id(run_id: Optional[str]) -> Optional[str]:
    """Install ``run_id`` globally (``None`` forgets it, so the next
    :func:`get_run_id` mints a fresh one)."""
    global _RUN_ID
    _RUN_ID = run_id
    return _RUN_ID


@dataclass(frozen=True)
class TraceContext:
    """What a dispatched task chunk needs to know about the parent's
    telemetry: whether to capture at all, and how to label/rebase it."""

    run_id: str
    trace: bool = False
    metrics: bool = False

    #: The parent tracer's clock (seconds since its epoch) when the
    #: chunk was dispatched; worker spans are shifted by this offset on
    #: merge so they land at roughly the right place on the parent's
    #: timeline (durations are exact; only the alignment is approximate).
    base: float = 0.0

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics


def current_context() -> Optional[TraceContext]:
    """A :class:`TraceContext` describing the installed tracer/metrics,
    or None when both are disabled (workers then skip capture entirely)."""
    tracer = get_tracer()
    metrics = get_metrics()
    if not tracer.enabled and not metrics.enabled:
        return None
    base = tracer.now() if isinstance(tracer, Tracer) else 0.0
    return TraceContext(
        run_id=get_run_id(),
        trace=tracer.enabled,
        metrics=metrics.enabled,
        base=base,
    )


@dataclass
class TelemetryCapsule:
    """Everything one worker recorded while executing one task chunk.

    ``packed_spans`` are the worker tracer's root spans in the compact
    tuple form of :func:`~repro.obs.spans.pack_span` — pickling
    primitives keeps the per-chunk transport cost off the sweep's
    critical path.  Times stay relative to the worker's capture epoch
    until :func:`merge_capsule` rebases them.  ``metrics`` is the
    worker registry's full state — counter values are *deltas* because
    the capture registry starts empty.
    """

    pid: int
    run_id: str
    base: float = 0.0
    packed_spans: "Tuple[PackedSpan, ...]" = ()
    metrics: "Optional[Dict[str, Any]]" = None
    span_count: int = 0

    @property
    def spans(self) -> "Tuple[Span, ...]":
        """The span trees rebuilt as :class:`Span` objects (unshifted)."""
        return tuple(unpack_span(packed) for packed in self.packed_spans)


class TelemetryCapture:
    """Worker-side capture scope: install fresh instruments, run the
    chunk, then pack a :class:`TelemetryCapsule` and restore the
    previous (usually disabled) instruments."""

    def __init__(self, ctx: TraceContext):
        self._ctx = ctx
        self._previous_tracer = get_tracer()
        self._previous_metrics = get_metrics()
        self._tracer: Optional[Tracer] = None
        self._registry: Optional[MetricsRegistry] = None
        if ctx.trace:
            self._tracer = Tracer()
            set_tracer(self._tracer)
        if ctx.metrics:
            self._registry = MetricsRegistry()
            set_metrics(self._registry)

    def finish(self) -> TelemetryCapsule:
        """Restore the previous instruments and build the capsule."""
        tracer_module_current = get_tracer()
        if self._tracer is not None and tracer_module_current is self._tracer:
            set_tracer(
                self._previous_tracer
                if isinstance(self._previous_tracer, Tracer)
                else None
            )
        if self._registry is not None and get_metrics() is self._registry:
            set_metrics(
                None
                if not self._previous_metrics.enabled
                else self._previous_metrics
            )
        packed: "Tuple[PackedSpan, ...]" = ()
        span_count = 0
        if self._tracer is not None:
            packed = tuple(pack_span(root) for root in self._tracer.roots)
            span_count = sum(1 for root in self._tracer.roots for _ in root.walk())
        return TelemetryCapsule(
            pid=os.getpid(),
            run_id=self._ctx.run_id,
            base=self._ctx.base,
            packed_spans=packed,
            metrics=self._registry.state() if self._registry is not None else None,
            span_count=span_count,
        )


def merge_capsule(
    capsule: TelemetryCapsule,
    tracer: "Optional[Tracer]" = None,
    metrics: "Optional[MetricsRegistry]" = None,
) -> None:
    """Fold one worker capsule into the parent's instruments.

    Span roots gain a ``pid`` attribute and are adopted under the
    currently open parent span; counter deltas are summed, histogram
    buckets merged, gauges applied last-write-wins.  Two bookkeeping
    counters record the merge itself: ``obs.capsules_merged`` and
    ``obs.worker_spans``.
    """
    target_tracer = tracer if tracer is not None else get_tracer()
    target_metrics = metrics if metrics is not None else get_metrics()
    if capsule.packed_spans:
        # Deferred adoption: the packed trees are anchored under the
        # open parent span now but only expanded into Span objects
        # when the trace is read (export time) — rebasing by the
        # dispatch offset and pid-stamping happen during that single
        # deferred walk, keeping the merge itself off the sweep's
        # critical path.
        target_tracer.adopt_packed(
            capsule.packed_spans, shift=capsule.base, pid=capsule.pid
        )
    if capsule.metrics:
        target_metrics.merge_state(capsule.metrics)
    if target_metrics.enabled:
        target_metrics.inc("obs.capsules_merged")
        if capsule.span_count:
            target_metrics.inc("obs.worker_spans", capsule.span_count)
