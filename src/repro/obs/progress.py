"""Live sweep progress: throttled stderr lines + machine heartbeats.

The engine reports sweep progress through the same injectable-global
idiom as the tracer and metrics registry: instrumented code calls
:func:`get_progress` (a no-op :data:`NULL_PROGRESS` by default) and
callers opt in with :func:`set_progress` / :func:`use_progress`.

A :class:`ProgressReporter` tracks one sweep at a time (``begin`` /
``advance`` / ``finish``) and emits two kinds of output, both
throttled to at most one emission per ``min_interval`` seconds (the
first and last emission of a sweep are never suppressed):

* a single-line human summary to ``stream`` (the CLI passes
  ``sys.stderr`` so machine-readable stdout stays pure) — tasks
  done/total, cache hits, failures, throughput and an ETA from a
  rolling window;
* a JSON heartbeat appended to the run ledger's ``progress.jsonl``
  (when a ledger is attached) and kept on ``latest`` for the HTTP
  ``/progress`` endpoint.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import IO, Any, Callable, Deque, Dict, Iterator, Optional, Tuple


class NullProgress:
    """The disabled reporter: every call is discarded."""

    enabled = False
    latest: "Optional[Dict[str, Any]]" = None

    def begin(self, total: int, label: str = "sweep") -> None:
        """Ignore the start of a sweep."""

    def advance(
        self, done: int = 0, cached: int = 0, retries: int = 0, failed: int = 0
    ) -> None:
        """Ignore progress."""

    def finish(self) -> None:
        """Ignore the end of a sweep."""


#: The process-wide default: progress reporting disabled.
NULL_PROGRESS = NullProgress()


class ProgressReporter:
    """Tracks one sweep's progress and emits throttled reports.

    Parameters
    ----------
    stream:
        Text stream for the human one-liner (None: no stream output).
        TTYs get ``\\r``-overwritten lines; files/pipes get one line
        per emission.
    ledger:
        An object with a ``heartbeat(record)`` method (the run
        ledger); every emission appends one JSON record there.
    min_interval:
        Seconds between emissions (first/last are always emitted).
    window_len:
        Number of recent ``advance`` samples the throughput/ETA
        rolling window keeps.
    clock / wall:
        Injectable monotonic and wall clocks for deterministic tests.
    """

    enabled = True

    def __init__(
        self,
        stream: "Optional[IO[str]]" = None,
        ledger: Optional[Any] = None,
        min_interval: float = 0.25,
        window_len: int = 64,
        clock: "Callable[[], float]" = time.monotonic,
        wall: "Callable[[], float]" = time.time,
    ):
        self.stream = stream
        self.ledger = ledger
        self.min_interval = min_interval
        self._clock = clock
        self._wall = wall
        self.latest: "Optional[Dict[str, Any]]" = None
        self.heartbeats = 0
        self.label = "sweep"
        self.total = 0
        self.done = 0
        self.cached = 0
        self.retries = 0
        self.failed = 0
        self._started = clock()
        self._last_emit: Optional[float] = None
        self._window: "Deque[Tuple[float, int]]" = deque(maxlen=window_len)
        self._line_open = False

    # -- sweep lifecycle ------------------------------------------------------

    def begin(self, total: int, label: str = "sweep") -> None:
        """Start (or restart) a sweep of ``total`` tasks."""
        self.label = label
        self.total = total
        self.done = self.cached = self.retries = self.failed = 0
        self._started = self._clock()
        self._last_emit = None
        self._window.clear()
        self._window.append((self._started, 0))
        self._emit(force=True)

    def advance(
        self, done: int = 0, cached: int = 0, retries: int = 0, failed: int = 0
    ) -> None:
        """Record progress; emits a report unless throttled."""
        self.done += done
        self.cached += cached
        self.retries += retries
        self.failed += failed
        if done:
            self._window.append((self._clock(), self.done))
        self._emit(force=self.total > 0 and self.done >= self.total)

    def finish(self) -> None:
        """Force a final emission and close an open TTY line."""
        self._emit(force=True)
        if self.stream is not None and self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    # -- internals ------------------------------------------------------------

    def _rate(self) -> float:
        """Tasks/second over the rolling window (0.0 when unknowable)."""
        if len(self._window) < 2:
            return 0.0
        (t0, done0), (t1, done1) = self._window[0], self._window[-1]
        if t1 <= t0 or done1 <= done0:
            return 0.0
        return (done1 - done0) / (t1 - t0)

    def _emit(self, force: bool = False) -> None:
        now = self._clock()
        if (
            not force
            and self._last_emit is not None
            and now - self._last_emit < self.min_interval
        ):
            return
        self._last_emit = now
        rate = self._rate()
        remaining = max(self.total - self.done, 0)
        eta = remaining / rate if rate > 0 else None
        record: "Dict[str, Any]" = {
            "kind": "progress",
            "ts": self._wall(),
            "label": self.label,
            "done": self.done,
            "total": self.total,
            "cached": self.cached,
            "retries": self.retries,
            "failed": self.failed,
            "elapsed_s": round(now - self._started, 6),
            "rate_per_s": round(rate, 6),
            "eta_s": None if eta is None else round(eta, 3),
        }
        self.latest = record
        self.heartbeats += 1
        if self.ledger is not None:
            self.ledger.heartbeat(record)
        if self.stream is not None:
            self._write_line(record)

    def _write_line(self, record: "Dict[str, Any]") -> None:
        assert self.stream is not None
        total = record["total"]
        percent = 100.0 * record["done"] / total if total else 100.0
        parts = [
            f"[{record['label']}] {record['done']}/{total} ({percent:.0f}%)",
            f"{record['cached']} cached",
        ]
        if record["retries"]:
            parts.append(f"{record['retries']} retries")
        if record["failed"]:
            parts.append(f"{record['failed']} failed")
        if record["rate_per_s"]:
            parts.append(f"{record['rate_per_s']:.1f}/s")
        if record["eta_s"] is not None:
            parts.append(f"eta {record['eta_s']:.0f}s")
        line = " · ".join(parts)
        try:
            tty = self.stream.isatty()
        except (AttributeError, ValueError):
            tty = False
        if tty:
            self.stream.write("\r\x1b[2K" + line)
            self._line_open = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()


_CURRENT: "NullProgress | ProgressReporter" = NULL_PROGRESS


def get_progress() -> "NullProgress | ProgressReporter":
    """The current process-global progress sink (no-op by default)."""
    return _CURRENT


def set_progress(
    reporter: "Optional[ProgressReporter]",
) -> "NullProgress | ProgressReporter":
    """Install ``reporter`` globally (``None`` restores the no-op default)."""
    global _CURRENT
    _CURRENT = NULL_PROGRESS if reporter is None else reporter
    return _CURRENT


@contextmanager
def use_progress(
    reporter: "Optional[ProgressReporter]",
) -> "Iterator[NullProgress | ProgressReporter]":
    """Install a reporter for the duration of a ``with`` block."""
    previous = _CURRENT
    installed = set_progress(reporter)
    try:
        yield installed
    finally:
        set_progress(previous if isinstance(previous, ProgressReporter) else None)
