"""The span tree node: one timed operation with attributes and children.

Spans form a tree per traced request (the :class:`~repro.obs.tracer.Tracer`
holds the roots).  Times are seconds relative to the owning tracer's
epoch, taken from a monotonic clock, so durations are meaningful even
when the wall clock steps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:
    from types import TracebackType

    from .tracer import Tracer

#: The compact tuple form of one span subtree (see :func:`pack_span`).
PackedSpan = Tuple[
    str,
    float,
    Optional[float],
    Optional[Dict[str, Any]],
    str,
    Optional[str],
    Optional[str],
    tuple,
]


class Span:
    """One timed operation in a trace tree.

    A span is its own context manager: :meth:`~repro.obs.tracer.Tracer.span`
    constructs it bound to the tracer, ``__enter__`` stamps the start
    time and pushes it onto the tracer's open-span stack, ``__exit__``
    stamps the end (recording the exception, if any) and pops it.
    Fusing the handle and the record into one hand-rolled slotted class
    saves an allocation and two delegating calls per span — spans are
    the highest-volume telemetry object (hundreds per sweep), so
    enter/exit IS the tracing hot path.

    Spans rebuilt from the packed wire form (or constructed directly)
    have no tracer binding and must not be used as context managers.
    """

    __slots__ = (
        "name",
        "start",
        "end",
        "attributes",
        "children",
        "status",
        "error_type",
        "error_message",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        start: float = 0.0,
        end: Optional[float] = None,
        attributes: "Optional[Dict[str, Any]]" = None,
        children: "Optional[List[Span]]" = None,
        status: str = "ok",
        error_type: Optional[str] = None,
        error_message: Optional[str] = None,
        tracer: "Optional[Tracer]" = None,
    ):
        self.name = name
        self.start = start
        self.end = end
        self.attributes = {} if attributes is None else attributes
        self.children = [] if children is None else children
        self.status = status
        self.error_type = error_type
        self.error_message = error_message
        self._tracer = tracer

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, start={self.start!r}, end={self.end!r}, "
            f"status={self.status!r}, children={len(self.children)})"
        )

    def __enter__(self) -> "Span":
        tracer = self._tracer
        assert tracer is not None, "span is not bound to a tracer"
        self.start = tracer._clock() - tracer._epoch
        stack = tracer._stack
        (stack[-1].children if stack else tracer.roots).append(self)
        stack.append(self)
        return self

    def __exit__(
        self,
        exc_type: "Optional[type]",
        exc: Optional[BaseException],
        _tb: "Optional[TracebackType]",
    ) -> bool:
        tracer = self._tracer
        assert tracer is not None, "span is not bound to a tracer"
        self.end = tracer._clock() - tracer._epoch
        if exc is not None:
            self.status = "error"
            self.error_type = type(exc).__name__
            self.error_message = str(exc)
            self.attributes.setdefault("error", repr(exc))
        # Tolerate mis-nested exits (e.g. a generator closed late) by
        # unwinding to the span being closed instead of corrupting the
        # stack for every subsequent span.
        stack = tracer._stack
        while stack:
            if stack.pop() is self:
                break
        return False

    @property
    def finished(self) -> bool:
        """Whether the span has been closed."""
        return self.end is not None

    @property
    def failed(self) -> bool:
        """Whether the span was exited by an exception."""
        return self.status == "error"

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def duration_ms(self) -> float:
        """Milliseconds from start to end (0.0 while still open)."""
        return self.duration * 1e3

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def shift(self, offset: float) -> "Span":
        """Move this span (and its subtree) ``offset`` seconds later.

        Used when adopting spans recorded against another tracer's
        epoch (a worker process's) onto this tracer's timeline;
        durations are unchanged.
        """
        self.start += offset
        if self.end is not None:
            self.end += offset
        for child in self.children:
            child.shift(offset)
        return self

    def walk(self, depth: int = 0) -> "Iterator[Tuple[Span, int]]":
        """Depth-first iteration of this span and its descendants."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self, parent: Optional[str] = None, depth: int = 0) -> "Dict[str, Any]":
        """A flat JSON-friendly record (children are *not* embedded).

        ``status`` distinguishes errored spans from completed ones;
        failed spans additionally carry ``error_type`` and
        ``error_message``.
        """
        record = {
            "name": self.name,
            "parent": parent,
            "depth": depth,
            "start_ms": round(self.start * 1e3, 6),
            "end_ms": None if self.end is None else round(self.end * 1e3, 6),
            "duration_ms": round(self.duration_ms, 6),
            "status": self.status,
            "attributes": dict(self.attributes),
        }
        if self.failed:
            record["error_type"] = self.error_type
            record["error_message"] = self.error_message
        return record


def pack_span(span: Span) -> PackedSpan:
    """The span subtree as nested tuples of primitives.

    The telemetry capsule ships worker spans in this form: pickling
    pure tuples/dicts of primitives runs entirely in C, several times
    faster than reducing the dataclass objects — and the capsule
    crossing the process boundary per chunk is the fabric's hottest
    serialization path.
    """
    return (
        span.name,
        span.start,
        span.end,
        span.attributes or None,
        span.status,
        span.error_type,
        span.error_message,
        tuple(pack_span(child) for child in span.children),
    )


def unpack_span(packed: PackedSpan, shift: float = 0.0) -> Span:
    """Rebuild a :func:`pack_span` subtree, shifting times by ``shift``.

    Folding the rebase into reconstruction saves the separate
    :meth:`Span.shift` walk when a capsule is merged.
    """
    name, start, end, attributes, status, error_type, error_message, kids = packed
    return Span(
        name=name,
        start=start + shift,
        end=None if end is None else end + shift,
        attributes=dict(attributes) if attributes else {},
        children=[unpack_span(kid, shift) for kid in kids],
        status=status,
        error_type=error_type,
        error_message=error_message,
    )
