"""The span tree node: one timed operation with attributes and children.

Spans form a tree per traced request (the :class:`~repro.obs.tracer.Tracer`
holds the roots).  Times are seconds relative to the owning tracer's
epoch, taken from a monotonic clock, so durations are meaningful even
when the wall clock steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass
class Span:
    """One timed operation in a trace tree.

    Mutable while open; :class:`~repro.obs.tracer.Tracer` sets ``end``
    when the span's context manager exits.
    """

    name: str
    start: float
    end: Optional[float] = None
    attributes: "Dict[str, Any]" = field(default_factory=dict)
    children: "List[Span]" = field(default_factory=list)
    status: str = "ok"
    error_type: Optional[str] = None
    error_message: Optional[str] = None

    @property
    def finished(self) -> bool:
        """Whether the span has been closed."""
        return self.end is not None

    @property
    def failed(self) -> bool:
        """Whether the span was exited by an exception."""
        return self.status == "error"

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def duration_ms(self) -> float:
        """Milliseconds from start to end (0.0 while still open)."""
        return self.duration * 1e3

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def walk(self, depth: int = 0) -> "Iterator[Tuple[Span, int]]":
        """Depth-first iteration of this span and its descendants."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self, parent: Optional[str] = None, depth: int = 0) -> "Dict[str, Any]":
        """A flat JSON-friendly record (children are *not* embedded).

        ``status`` distinguishes errored spans from completed ones;
        failed spans additionally carry ``error_type`` and
        ``error_message``.
        """
        record = {
            "name": self.name,
            "parent": parent,
            "depth": depth,
            "start_ms": round(self.start * 1e3, 6),
            "end_ms": None if self.end is None else round(self.end * 1e3, 6),
            "duration_ms": round(self.duration_ms, 6),
            "status": self.status,
            "attributes": dict(self.attributes),
        }
        if self.failed:
            record["error_type"] = self.error_type
            record["error_message"] = self.error_message
        return record
