"""Aggregate recorded spans into a performance profile.

A :class:`~repro.obs.tracer.Tracer` holds the raw span trees of one
run; :func:`build_profile` collapses them two ways:

* **per span name** (:class:`ProfileEntry`) — call count, cumulative
  time (span durations, children included), *self* time (duration
  minus the direct children's durations), min/max and error count,
  ranked hottest-self-time first;
* **per call path** (:class:`PathNode`) — the merged call tree, every
  occurrence of the same root-to-span name path folded into one node,
  which is what the flamegraph-style text report renders.

Open (never-closed) spans contribute their call count but zero time,
so a profile taken mid-run never reports negative self time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple, Union

from .spans import Span
from .tracer import NullTracer, Tracer


@dataclass(frozen=True)
class ProfileEntry:
    """Aggregate timings of every span sharing one name."""

    name: str
    calls: int
    cum_ms: float
    self_ms: float
    min_ms: float
    max_ms: float
    errors: int = 0

    @property
    def mean_ms(self) -> float:
        """Average cumulative milliseconds per call."""
        return self.cum_ms / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class PathNode:
    """One node of the merged call tree (all spans on one name path)."""

    name: str
    calls: int
    cum_ms: float
    self_ms: float
    errors: int
    children: "Tuple[PathNode, ...]" = ()

    def walk(self, depth: int = 0):
        """Depth-first iteration of this node and its descendants."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


@dataclass(frozen=True)
class Profile:
    """The aggregated view of one tracer's spans."""

    entries: "Tuple[ProfileEntry, ...]"  # ranked by self time, hottest first
    tree: "Tuple[PathNode, ...]"         # merged call tree, one node per path
    total_ms: float                      # sum of root span durations
    span_count: int

    def hot(self, limit: int = 10) -> "Tuple[ProfileEntry, ...]":
        """The ``limit`` hottest entries by self time."""
        return self.entries[:limit]

    def entry(self, name: str) -> ProfileEntry:
        """The entry for ``name`` (KeyError if that name never ran)."""
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        raise KeyError(name)


class _NameStats:
    """Mutable per-name accumulator used while building."""

    __slots__ = ("calls", "cum", "self", "min", "max", "errors")

    def __init__(self) -> None:
        self.calls = 0
        self.cum = 0.0
        self.self = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.errors = 0


class _PathStats:
    """Mutable per-path accumulator used while building."""

    __slots__ = ("name", "calls", "cum", "self", "errors", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.cum = 0.0
        self.self = 0.0
        self.errors = 0
        self.children: "Dict[str, _PathStats]" = {}

    def freeze(self) -> PathNode:
        return PathNode(
            name=self.name,
            calls=self.calls,
            cum_ms=self.cum,
            self_ms=self.self,
            errors=self.errors,
            children=tuple(
                child.freeze()
                for child in sorted(
                    self.children.values(), key=lambda c: -c.cum
                )
            ),
        )


def _self_ms(span: Span) -> float:
    """Span duration minus direct children, floored at zero."""
    children_ms = sum(child.duration_ms for child in span.children)
    return max(span.duration_ms - children_ms, 0.0)


def build_profile(tracer: "Union[Tracer, NullTracer]") -> Profile:
    """Collapse a tracer's span trees into a :class:`Profile`."""
    by_name: "Dict[str, _NameStats]" = {}
    path_roots: "Dict[str, _PathStats]" = {}
    span_count = 0
    total_ms = 0.0

    def visit(span: Span, siblings: "Dict[str, _PathStats]") -> None:
        nonlocal span_count
        span_count += 1
        duration = span.duration_ms
        own = _self_ms(span)
        failed = 1 if span.failed else 0

        stats = by_name.get(span.name)
        if stats is None:
            stats = by_name[span.name] = _NameStats()
        stats.calls += 1
        stats.cum += duration
        stats.self += own
        stats.min = min(stats.min, duration)
        stats.max = max(stats.max, duration)
        stats.errors += failed

        node = siblings.get(span.name)
        if node is None:
            node = siblings[span.name] = _PathStats(span.name)
        node.calls += 1
        node.cum += duration
        node.self += own
        node.errors += failed
        for child in span.children:
            visit(child, node.children)

    for root in tracer.roots:
        total_ms += root.duration_ms
        visit(root, path_roots)

    entries: "List[ProfileEntry]" = [
        ProfileEntry(
            name=name,
            calls=stats.calls,
            cum_ms=stats.cum,
            self_ms=stats.self,
            min_ms=0.0 if stats.min == float("inf") else stats.min,
            max_ms=stats.max,
            errors=stats.errors,
        )
        for name, stats in by_name.items()
    ]
    entries.sort(key=lambda e: (-e.self_ms, -e.cum_ms, e.name))
    tree = tuple(
        node.freeze()
        for node in sorted(path_roots.values(), key=lambda n: -n.cum)
    )
    return Profile(
        entries=tuple(entries),
        tree=tree,
        total_ms=total_ms,
        span_count=span_count,
    )


def span_skeleton(tracer: "Union[Tracer, NullTracer]") -> "List[Dict[str, Any]]":
    """The structure-only view of a tracer's span forest.

    Names and nesting, with every timing, attribute and PID stripped —
    exactly the part of a merged trace that must be identical between
    a serial and a parallel run of the same sweep (workers adopt their
    spans in submission order, so the merged forest keeps input
    order).  :func:`skeleton_digest` hashes it for byte-stability
    assertions.
    """

    def node(span: Span) -> "Dict[str, Any]":
        return {
            "name": span.name,
            "children": [node(child) for child in span.children],
        }

    return [node(root) for root in tracer.roots]


def skeleton_digest(tracer: "Union[Tracer, NullTracer]") -> str:
    """SHA-256 over the canonical JSON of :func:`span_skeleton`."""
    body = json.dumps(
        span_skeleton(tracer), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()
