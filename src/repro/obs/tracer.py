"""Structured tracing: nested spans with wall-clock timings.

Two tracers exist:

* :class:`Tracer` records a tree of :class:`~repro.obs.spans.Span`
  objects per top-level operation (``tracer.roots``);
* :class:`NullTracer` (the process default, :data:`NULL_TRACER`)
  records nothing — its :meth:`~NullTracer.span` hands back one shared
  context manager whose enter/exit are empty, so instrumented code pays
  essentially a single attribute check when tracing is disabled.

Instrumented code never constructs tracers; it fetches the current one::

    tracer = get_tracer()
    with tracer.span("recovery.plan", scenario=label) as span:
        ...
        span.set(steps=len(steps))

and callers opt in by installing a real tracer with :func:`set_tracer`
or the :func:`use_tracer` context manager.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from .spans import Span, unpack_span


class _NullSpan:
    """The shared do-nothing span handle of the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        """Discard attributes; returns self for chaining."""
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every span is the shared no-op handle."""

    enabled = False

    def span(self, name: str, /, **attributes: Any) -> _NullSpan:
        """A context manager that records nothing."""
        return _NULL_SPAN

    @property
    def roots(self) -> "Tuple[Span, ...]":
        """Always empty."""
        return ()

    def walk(self) -> "Iterator[Tuple[Span, int]]":
        """Always empty."""
        return iter(())

    def adopt(self, spans: "Iterable[Span]", shift: float = 0.0) -> None:
        """Discard externally-recorded spans."""

    def adopt_packed(
        self,
        packed_roots: "Iterable[tuple]",
        shift: float = 0.0,
        pid: Optional[int] = None,
    ) -> None:
        """Discard externally-recorded packed span trees."""

    def clear(self) -> None:
        """Nothing to clear."""


#: The process-wide default: tracing disabled.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects trees of timed spans.

    Parameters
    ----------
    clock:
        A monotonic float-second clock, injectable for deterministic
        tests.  Defaults to :func:`time.perf_counter`.  All span times
        are relative to the tracer's construction (its *epoch*).
    """

    enabled = True

    def __init__(self, clock: "Callable[[], float]" = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._roots: "List[Span]" = []
        self._stack: "List[Span]" = []
        # Packed span forests adopted but not yet expanded: tuples of
        # (packed_roots, shift, pid, anchor span or None for the root
        # level).  See :meth:`adopt_packed`.
        self._pending: "List[Tuple[tuple, float, Optional[int], Optional[Span]]]" = []

    @property
    def roots(self) -> "List[Span]":
        """The recorded top-level spans (pending adoptions expanded)."""
        if self._pending:
            self._materialize()
        return self._roots

    def now(self) -> float:
        """Seconds since the tracer's epoch."""
        return self._clock() - self._epoch

    def span(self, name: str, /, **attributes: Any) -> Span:
        """A context manager recording one nested, timed span.

        The returned :class:`Span` is bound to this tracer and records
        itself on ``with``-entry; the kwargs dict is fresh per call, so
        the span owns it outright (no defensive copy on the hot path).
        """
        return Span(name, attributes=attributes, tracer=self)

    def adopt(self, spans: "Iterable[Span]", shift: float = 0.0) -> None:
        """Attach externally-recorded span trees to this tracer.

        The roots become children of the currently open span (or new
        roots when no span is open) — how a worker's telemetry capsule
        lands under the parent's ``engine.map`` span.  ``shift`` is
        added to every start/end time so spans recorded against a
        different epoch (a worker tracer's) line up with this tracer's
        timeline.
        """
        if self._pending:
            self._materialize()
        target = self._stack[-1].children if self._stack else self._roots
        for span in spans:
            if shift:
                span.shift(shift)
            target.append(span)

    def adopt_packed(
        self,
        packed_roots: "Iterable[tuple]",
        shift: float = 0.0,
        pid: Optional[int] = None,
    ) -> None:
        """Adopt packed span trees (see :func:`~repro.obs.spans.pack_span`)
        without expanding them yet.

        The expansion into :class:`Span` objects — hundreds of
        allocations per worker capsule — is deferred until the spans
        are actually read (:attr:`roots` / :meth:`walk`), which for a
        sweep means export time, not the sweep's critical path.  The
        currently open span is captured as the anchor so deferred
        trees still land exactly where an eager :meth:`adopt` would
        have put them; ``pid`` is stamped on each expanded root.
        """
        self._pending.append(
            (tuple(packed_roots), shift, pid, self._stack[-1] if self._stack else None)
        )

    def _materialize(self) -> None:
        """Expand every pending packed forest under its anchor, in
        adoption order."""
        pending, self._pending = self._pending, []
        for packed_roots, shift, pid, anchor in pending:
            target = anchor.children if anchor is not None else self._roots
            for packed in packed_roots:
                root = unpack_span(packed, shift)
                if pid is not None:
                    root.attributes.setdefault("pid", pid)
                target.append(root)

    def walk(self) -> "Iterator[Tuple[Span, int]]":
        """Depth-first iteration over every recorded span with its depth."""
        for root in self.roots:
            yield from root.walk()

    def clear(self) -> None:
        """Drop all recorded spans (open spans are abandoned)."""
        self._roots.clear()
        self._stack.clear()
        self._pending.clear()


_CURRENT: "NullTracer | Tracer" = NULL_TRACER


def get_tracer() -> "NullTracer | Tracer":
    """The current process-global tracer (no-op unless installed)."""
    return _CURRENT


def set_tracer(tracer: "Optional[Tracer]") -> "NullTracer | Tracer":
    """Install ``tracer`` globally (``None`` restores the no-op default).

    Returns the installed tracer for convenience.
    """
    global _CURRENT
    _CURRENT = NULL_TRACER if tracer is None else tracer
    return _CURRENT


@contextmanager
def use_tracer(tracer: "Optional[Tracer]") -> "Iterator[NullTracer | Tracer]":
    """Install a tracer for the duration of a ``with`` block."""
    previous = _CURRENT
    installed = set_tracer(tracer)
    try:
        yield installed
    finally:
        set_tracer(previous if isinstance(previous, Tracer) else None)
