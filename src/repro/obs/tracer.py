"""Structured tracing: nested spans with wall-clock timings.

Two tracers exist:

* :class:`Tracer` records a tree of :class:`~repro.obs.spans.Span`
  objects per top-level operation (``tracer.roots``);
* :class:`NullTracer` (the process default, :data:`NULL_TRACER`)
  records nothing — its :meth:`~NullTracer.span` hands back one shared
  context manager whose enter/exit are empty, so instrumented code pays
  essentially a single attribute check when tracing is disabled.

Instrumented code never constructs tracers; it fetches the current one::

    tracer = get_tracer()
    with tracer.span("recovery.plan", scenario=label) as span:
        ...
        span.set(steps=len(steps))

and callers opt in by installing a real tracer with :func:`set_tracer`
or the :func:`use_tracer` context manager.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional, Tuple

from .spans import Span


class _NullSpan:
    """The shared do-nothing span handle of the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        """Discard attributes; returns self for chaining."""
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every span is the shared no-op handle."""

    enabled = False

    def span(self, name: str, /, **attributes: Any) -> _NullSpan:
        """A context manager that records nothing."""
        return _NULL_SPAN

    @property
    def roots(self) -> "Tuple[Span, ...]":
        """Always empty."""
        return ()

    def walk(self) -> "Iterator[Tuple[Span, int]]":
        """Always empty."""
        return iter(())

    def clear(self) -> None:
        """Nothing to clear."""


#: The process-wide default: tracing disabled.
NULL_TRACER = NullTracer()


class _ActiveSpan:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, attributes: "dict"):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._begin(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        assert self._span is not None, "span exited before it was entered"
        self._tracer._end(self._span, exc)
        return False


class Tracer:
    """Collects trees of timed spans.

    Parameters
    ----------
    clock:
        A monotonic float-second clock, injectable for deterministic
        tests.  Defaults to :func:`time.perf_counter`.  All span times
        are relative to the tracer's construction (its *epoch*).
    """

    enabled = True

    def __init__(self, clock: "Callable[[], float]" = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self.roots: "List[Span]" = []
        self._stack: "List[Span]" = []

    def now(self) -> float:
        """Seconds since the tracer's epoch."""
        return self._clock() - self._epoch

    def span(self, name: str, /, **attributes: Any) -> _ActiveSpan:
        """A context manager recording one nested, timed span."""
        return _ActiveSpan(self, name, attributes)

    def _begin(self, name: str, attributes: "dict") -> Span:
        span = Span(name=name, start=self.now(), attributes=dict(attributes))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _end(self, span: Span, exc: Optional[BaseException]) -> None:
        span.end = self.now()
        if exc is not None:
            span.status = "error"
            span.error_type = type(exc).__name__
            span.error_message = str(exc)
            span.attributes.setdefault("error", repr(exc))
        # Tolerate mis-nested exits (e.g. a generator closed late) by
        # unwinding to the span being closed instead of corrupting the
        # stack for every subsequent span.
        while self._stack:
            if self._stack.pop() is span:
                break

    def walk(self) -> "Iterator[Tuple[Span, int]]":
        """Depth-first iteration over every recorded span with its depth."""
        for root in self.roots:
            yield from root.walk()

    def clear(self) -> None:
        """Drop all recorded spans (open spans are abandoned)."""
        self.roots.clear()
        self._stack.clear()


_CURRENT: "NullTracer | Tracer" = NULL_TRACER


def get_tracer() -> "NullTracer | Tracer":
    """The current process-global tracer (no-op unless installed)."""
    return _CURRENT


def set_tracer(tracer: "Optional[Tracer]") -> "NullTracer | Tracer":
    """Install ``tracer`` globally (``None`` restores the no-op default).

    Returns the installed tracer for convenience.
    """
    global _CURRENT
    _CURRENT = NULL_TRACER if tracer is None else tracer
    return _CURRENT


@contextmanager
def use_tracer(tracer: "Optional[Tracer]") -> "Iterator[NullTracer | Tracer]":
    """Install a tracer for the duration of a ``with`` block."""
    previous = _CURRENT
    installed = set_tracer(tracer)
    try:
        yield installed
    finally:
        set_tracer(previous if isinstance(previous, Tracer) else None)
