"""The run ledger: one durable, diffable directory of artifacts per run.

Every sweep invoked with ``--run-dir`` leaves a complete observability
record behind::

    <run-dir>/
      manifest.json    # run ID, argv, model schema version, wall time
      spans.jsonl      # the merged span forest (worker spans included)
      metrics.prom     # final OpenMetrics snapshot of the registry
      progress.jsonl   # one JSON heartbeat per progress emission

``manifest.json`` is written by :meth:`RunLedger.begin` as soon as the
run starts (so a crashed run still identifies itself) and rewritten by
:meth:`RunLedger.finish` with the wall time and exit status.  Span and
metric artifacts reuse the existing JSONL / OpenMetrics writers, so
everything in the ledger round-trips through the same readers as
``--trace-out`` / ``--metrics-out``.

The ledger never *owns* instruments — the caller passes its tracer and
registry to ``finish`` — so it layers strictly above
:mod:`repro.obs.tracer` / :mod:`repro.obs.metrics` and below nothing.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, Optional, Union

from .context import new_run_id
from .export import write_openmetrics, write_trace_jsonl
from .metrics import MetricsRegistry
from .tracer import NullTracer, Tracer


def _utc_stamp(wall_seconds: float) -> str:
    """An ISO-8601 UTC timestamp for manifest fields."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(wall_seconds))


class RunLedger:
    """Writes one run's observability artifacts under a directory."""

    MANIFEST = "manifest.json"
    SPANS = "spans.jsonl"
    METRICS = "metrics.prom"
    PROGRESS = "progress.jsonl"

    def __init__(
        self,
        directory: "Union[str, os.PathLike]",
        run_id: Optional[str] = None,
        argv: Optional[list] = None,
    ):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.run_id = run_id if run_id is not None else new_run_id()
        self.argv = list(argv) if argv is not None else []
        self._started_wall = time.time()
        self._started = time.perf_counter()
        self._manifest: "Dict[str, Any]" = {}
        self.heartbeats = 0

    def path(self, filename: str) -> str:
        """The absolute path of one ledger artifact."""
        return os.path.join(self.directory, filename)

    # -- lifecycle ------------------------------------------------------------

    def begin(self, extra: "Optional[Dict[str, Any]]" = None) -> "Dict[str, Any]":
        """Write the initial manifest and truncate ``progress.jsonl``.

        ``extra`` lands verbatim in the manifest — the CLI passes the
        engine's ``model_schema_version`` (the SHA over the model
        source that also versions the result cache), the worker count
        and the cache directory.
        """
        self._manifest = {
            "run_id": self.run_id,
            "argv": self.argv,
            "pid": os.getpid(),
            "python": sys.version.split()[0],
            "started": _utc_stamp(self._started_wall),
            "status": "running",
        }
        if extra:
            self._manifest.update(extra)
        self._write_manifest()
        with open(self.path(self.PROGRESS), "w"):
            pass
        return dict(self._manifest)

    def heartbeat(self, record: "Dict[str, Any]") -> None:
        """Append one progress heartbeat to ``progress.jsonl``."""
        self.heartbeats += 1
        with open(self.path(self.PROGRESS), "a") as handle:
            handle.write(json.dumps(record) + "\n")

    def finish(
        self,
        tracer: "Optional[Union[Tracer, NullTracer]]" = None,
        metrics: Optional[MetricsRegistry] = None,
        status: str = "ok",
    ) -> "Dict[str, Any]":
        """Write span/metric artifacts and the final manifest.

        Safe to call without a tracer or registry — the corresponding
        artifact is simply skipped — and idempotent, so both a normal
        exit and an error path may call it.
        """
        span_count = 0
        if tracer is not None and tracer.enabled:
            span_count = write_trace_jsonl(self.path(self.SPANS), tracer=tracer)
        if metrics is not None and metrics.enabled:
            write_openmetrics(self.path(self.METRICS), metrics)
        if not self._manifest:
            self.begin()
        self._manifest.update(
            {
                "status": status,
                "finished": _utc_stamp(time.time()),
                "wall_time_s": round(time.perf_counter() - self._started, 6),
                "spans": span_count,
                "heartbeats": self.heartbeats,
            }
        )
        self._write_manifest()
        return dict(self._manifest)

    # -- internals ------------------------------------------------------------

    def _write_manifest(self) -> None:
        with open(self.path(self.MANIFEST), "w") as handle:
            json.dump(self._manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")


def read_manifest(directory: "Union[str, os.PathLike]") -> "Dict[str, Any]":
    """Load a ledger directory's ``manifest.json``."""
    with open(os.path.join(os.fspath(directory), RunLedger.MANIFEST)) as handle:
        loaded: "Dict[str, Any]" = json.load(handle)
        return loaded
