"""The run ledger: one durable, diffable directory of artifacts per run.

Every sweep invoked with ``--run-dir`` leaves a complete observability
record behind::

    <run-dir>/
      manifest.json    # run ID, argv, schema versions, rollups, tasks
      spans.jsonl      # the merged span forest (worker spans included)
      metrics.prom     # final OpenMetrics snapshot of the registry
      progress.jsonl   # one JSON heartbeat per progress emission

``manifest.json`` is written by :meth:`RunLedger.begin` as soon as the
run starts (so a crashed run still identifies itself) and rewritten by
:meth:`RunLedger.finish` with the wall time and exit status.  Both
writes go through a temp-file-and-rename, so a crash mid-write can
never leave a torn manifest — the previous complete manifest survives.

Manifest schema (``manifest_schema``):

* **v1** (PR 6) — identification only: run ID, argv, timestamps,
  status, model schema version.
* **v2** (this module) — v1 plus the fields the run observatory
  (:mod:`repro.obs.runs` / :mod:`repro.obs.diff`) compares without
  re-parsing the full span stream: a ``rollup`` of per-span-name
  timings and the merged name-path call tree, a ``metrics`` snapshot,
  and the engine's content-addressed ``tasks`` records (task key +
  result digest per sweep task).  v1 manifests still load everywhere;
  the enrichment fields are simply absent.

Span and metric artifacts reuse the existing JSONL / OpenMetrics
writers, so everything in the ledger round-trips through the same
readers as ``--trace-out`` / ``--metrics-out``.

The ledger never *owns* instruments — the caller passes its tracer and
registry to ``finish`` — so it layers strictly above
:mod:`repro.obs.tracer` / :mod:`repro.obs.metrics` and below nothing.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Union

from ..exceptions import ReproError
from .context import new_run_id
from .export import write_openmetrics, write_trace_jsonl
from .metrics import MetricsRegistry
from .profile import PathNode, build_profile
from .tracer import NullTracer, Tracer

#: The manifest layout this module writes (see the module docstring).
MANIFEST_SCHEMA = 2


class ManifestError(ReproError, ValueError):
    """A ledger manifest is missing, unparseable or structurally wrong.

    Raised by :func:`read_manifest` so callers (the run observatory's
    :class:`~repro.obs.runs.RunStore`) can skip-and-count a corrupt run
    directory instead of dying on a bare ``JSONDecodeError``.
    """


def _utc_stamp(wall_seconds: float) -> str:
    """An ISO-8601 UTC timestamp for manifest fields."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(wall_seconds))


def _tree_node_dict(node: PathNode) -> "Dict[str, Any]":
    """One merged call-tree node as a JSON-able manifest record."""
    return {
        "name": node.name,
        "calls": node.calls,
        "cum_ms": round(node.cum_ms, 6),
        "self_ms": round(node.self_ms, 6),
        "errors": node.errors,
        "children": [_tree_node_dict(child) for child in node.children],
    }


def span_rollup(tracer: "Union[Tracer, NullTracer]") -> "Dict[str, Any]":
    """The manifest's ``rollup`` field: per-name timings + path tree.

    Collapses the tracer's span forest through
    :func:`repro.obs.profile.build_profile` into the two views the run
    observatory diffs: ``spans`` (flat per-span-name call counts,
    cumulative/self milliseconds, error counts) and ``tree`` (the
    merged name-path call tree, every occurrence of one root-to-span
    name path folded into a single node — the structure hierarchical
    regression attribution walks).
    """
    profile = build_profile(tracer)
    return {
        "spans": {
            entry.name: {
                "calls": entry.calls,
                "cum_ms": round(entry.cum_ms, 6),
                "self_ms": round(entry.self_ms, 6),
                "errors": entry.errors,
            }
            for entry in profile.entries
        },
        "tree": [_tree_node_dict(node) for node in profile.tree],
        "total_ms": round(profile.total_ms, 6),
        "span_count": profile.span_count,
    }


class RunLedger:
    """Writes one run's observability artifacts under a directory."""

    MANIFEST = "manifest.json"
    SPANS = "spans.jsonl"
    METRICS = "metrics.prom"
    PROGRESS = "progress.jsonl"

    def __init__(
        self,
        directory: "Union[str, os.PathLike]",
        run_id: Optional[str] = None,
        argv: Optional[list] = None,
    ):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.run_id = run_id if run_id is not None else new_run_id()
        self.argv = list(argv) if argv is not None else []
        self._started_wall = time.time()
        self._started = time.perf_counter()
        self._manifest: "Dict[str, Any]" = {}
        self.heartbeats = 0

    def path(self, filename: str) -> str:
        """The absolute path of one ledger artifact."""
        return os.path.join(self.directory, filename)

    # -- lifecycle ------------------------------------------------------------

    def begin(self, extra: "Optional[Dict[str, Any]]" = None) -> "Dict[str, Any]":
        """Write the initial manifest and truncate ``progress.jsonl``.

        ``extra`` lands verbatim in the manifest — the CLI passes the
        engine's ``model_schema_version`` (the SHA over the model
        source that also versions the result cache), the worker count
        and the cache directory.
        """
        self._manifest = {
            "manifest_schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "argv": self.argv,
            "pid": os.getpid(),
            "python": sys.version.split()[0],
            "started": _utc_stamp(self._started_wall),
            "status": "running",
        }
        if extra:
            self._manifest.update(extra)
        self._write_manifest()
        with open(self.path(self.PROGRESS), "w"):
            pass
        return dict(self._manifest)

    def heartbeat(self, record: "Dict[str, Any]") -> None:
        """Append one progress heartbeat to ``progress.jsonl``."""
        self.heartbeats += 1
        with open(self.path(self.PROGRESS), "a") as handle:
            handle.write(json.dumps(record) + "\n")

    def finish(
        self,
        tracer: "Optional[Union[Tracer, NullTracer]]" = None,
        metrics: Optional[MetricsRegistry] = None,
        status: str = "ok",
        tasks: "Optional[List[Dict[str, Any]]]" = None,
    ) -> "Dict[str, Any]":
        """Write span/metric artifacts and the final manifest.

        Safe to call without a tracer or registry — the corresponding
        artifact is simply skipped — and idempotent, so both a normal
        exit and an error path may call it.

        ``tasks`` is the engine's per-task record list (name, content
        key, result digest, cache disposition — see
        :class:`repro.obs.runs.TaskLog`); it lands in the manifest so
        two runs can be joined task-by-task without re-evaluating
        anything.  The final manifest also carries the span ``rollup``
        and a ``metrics`` snapshot, making one manifest read sufficient
        for ``repro runs list``/``diff``.
        """
        span_count = 0
        if tracer is not None and tracer.enabled:
            span_count = write_trace_jsonl(self.path(self.SPANS), tracer=tracer)
            self._manifest["rollup"] = span_rollup(tracer)
        if metrics is not None and metrics.enabled:
            write_openmetrics(self.path(self.METRICS), metrics, run_id=self.run_id)
            self._manifest["metrics"] = metrics.snapshot()
        if tasks is not None:
            self._manifest["tasks"] = list(tasks)
        if not self._manifest:
            self.begin()
        self._manifest.update(
            {
                "status": status,
                "finished": _utc_stamp(time.time()),
                "wall_time_s": round(time.perf_counter() - self._started, 6),
                "spans": span_count,
                "heartbeats": self.heartbeats,
            }
        )
        self._write_manifest()
        return dict(self._manifest)

    # -- internals ------------------------------------------------------------

    def _write_manifest(self) -> None:
        """Atomically replace ``manifest.json``.

        The manifest is written twice per run (``begin`` and
        ``finish``); writing in place would let a crash mid-``finish``
        leave a torn, unparseable file.  Writing to a temp file in the
        same directory and renaming over the target is atomic on POSIX,
        so readers only ever see a complete manifest (the ``begin`` one
        until ``finish`` lands).
        """
        target = self.path(self.MANIFEST)
        temp = f"{target}.tmp.{os.getpid()}"
        with open(temp, "w") as handle:
            json.dump(self._manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, target)


def read_manifest(directory: "Union[str, os.PathLike]") -> "Dict[str, Any]":
    """Load a ledger directory's ``manifest.json``.

    Raises :class:`ManifestError` when the file is missing, is not
    valid JSON, or does not hold a JSON object — one exception type for
    "this directory is not a usable run ledger", whatever the low-level
    cause.
    """
    path = os.path.join(os.fspath(directory), RunLedger.MANIFEST)
    try:
        with open(path) as handle:
            loaded = json.load(handle)
    except OSError as exc:
        raise ManifestError(f"cannot read run manifest {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ManifestError(
            f"run manifest {path!r} is not valid JSON "
            f"(line {exc.lineno}: {exc.msg}); was the run torn mid-write?"
        ) from exc
    if not isinstance(loaded, dict):
        raise ManifestError(
            f"run manifest {path!r} holds {type(loaded).__name__}, "
            "expected a JSON object"
        )
    return loaded
