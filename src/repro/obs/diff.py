"""Structural run diffing and regression attribution.

:func:`diff_runs` aligns two loaded runs (:class:`~repro.obs.runs.RunRecord`)
along three axes:

* **spans** — the flat per-span-name stats are joined by name into
  :class:`SpanDelta` rows (cumulative/self-time and call-count deltas,
  spans only one run has marked ``added``/``removed``), and the merged
  name-path call trees are walked top-down to *attribute* each
  regressed root to the deepest path that explains it
  (:class:`Attribution`);
* **metrics** — counters, gauges and histogram summaries are joined by
  instrument name (normalized through
  :func:`~repro.obs.export.prom_metric_name`, so a v2 manifest's dotted
  names compare equal to names parsed back from a v1 ``metrics.prom``)
  into :class:`MetricDelta` rows;
* **tasks** — the engine's task records are joined by content-addressed
  task key, splitting differences into *correctness drift* (same key,
  different result digest — the runs computed different answers) and
  mere cache/perf churn (``newly_cached`` / ``newly_uncached``
  transitions), plus added/removed work items.

The attribution walk is the heart of the regression story.  A root span
is *regressed* when its cumulative time grew by more than
``abs_threshold_ms`` **and** by more than ``rel_threshold`` of its
baseline — both gates, so neither microsecond jitter on tiny spans nor
a fixed-cost wobble on huge ones raises alarms.  From a regressed root
the walk repeatedly descends into the child (matched by name; a child
only the candidate has counts from a zero baseline) with the largest
positive delta, as long as that child explains at least
``explain_fraction`` of the current node's delta.  Where the walk stops
is the deepest span path that still accounts for the regression — the
place to start profiling, not just the fact that "evaluate got slower".

Everything is computed from the two manifests (with artifact fallbacks
inside :class:`RunRecord`), so diffing never re-runs anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .export import prom_metric_name
from .runs import RunRecord

#: A span must slow down by more than this many milliseconds ...
DEFAULT_ABS_THRESHOLD_MS = 5.0
#: ... *and* by more than this fraction of its baseline to regress.
DEFAULT_REL_THRESHOLD = 0.25
#: A child must explain at least this fraction of its parent's delta
#: for the attribution walk to descend into it.
DEFAULT_EXPLAIN_FRACTION = 0.5


@dataclass
class SpanDelta:
    """One span name's timing change between two runs."""

    name: str
    status: str  #: ``common`` | ``added`` | ``removed``
    base_calls: int
    cand_calls: int
    base_cum_ms: float
    cand_cum_ms: float
    delta_cum_ms: float
    delta_self_ms: float

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "name": self.name,
            "status": self.status,
            "base_calls": self.base_calls,
            "cand_calls": self.cand_calls,
            "base_cum_ms": round(self.base_cum_ms, 6),
            "cand_cum_ms": round(self.cand_cum_ms, 6),
            "delta_cum_ms": round(self.delta_cum_ms, 6),
            "delta_self_ms": round(self.delta_self_ms, 6),
        }


@dataclass
class Attribution:
    """One regressed root span, attributed to its deepest explaining path.

    ``path`` runs from the regressed root down to the deepest span
    whose delta still explains the regression; ``share`` is the
    fraction of the root's delta that deepest span accounts for.
    """

    path: "List[str]"
    root_delta_ms: float
    delta_ms: float
    base_ms: float
    cand_ms: float
    share: float

    @property
    def leaf(self) -> str:
        """The deepest span name on the attributed path."""
        return self.path[-1]

    def describe(self) -> str:
        """One human line: ``a > b > c  +123.4ms (87% of +141.9ms)``."""
        joined = " > ".join(self.path)
        return (
            f"{joined}  +{self.delta_ms:.1f}ms "
            f"({self.share:.0%} of +{self.root_delta_ms:.1f}ms)"
        )

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "path": list(self.path),
            "root_delta_ms": round(self.root_delta_ms, 6),
            "delta_ms": round(self.delta_ms, 6),
            "base_ms": round(self.base_ms, 6),
            "cand_ms": round(self.cand_ms, 6),
            "share": round(self.share, 4),
        }


@dataclass
class MetricDelta:
    """One instrument's change between two runs (normalized name)."""

    name: str
    kind: str  #: ``counter`` | ``gauge`` | ``histogram``
    base: Optional[float]
    cand: Optional[float]
    delta: float
    base_count: Optional[int] = None
    cand_count: Optional[int] = None
    delta_count: int = 0

    def to_dict(self) -> "Dict[str, Any]":
        record: "Dict[str, Any]" = {
            "name": self.name,
            "kind": self.kind,
            "base": self.base,
            "cand": self.cand,
            "delta": round(self.delta, 6),
        }
        if self.kind == "histogram":
            record["base_count"] = self.base_count
            record["cand_count"] = self.cand_count
            record["delta_count"] = self.delta_count
        return record


@dataclass
class TaskDrift:
    """Same task key, different result digest: correctness drift."""

    key: str
    task: str
    label: Optional[str]
    base_digest: str
    cand_digest: str

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "key": self.key,
            "task": self.task,
            "label": self.label,
            "base_digest": self.base_digest,
            "cand_digest": self.cand_digest,
        }


@dataclass
class RunDiff:
    """The full structural diff of two runs."""

    base_run_id: str
    cand_run_id: str
    base_command: Optional[str]
    cand_command: Optional[str]
    schema_mismatch: bool
    base_model_version: Optional[str]
    cand_model_version: Optional[str]
    base_total_ms: float
    cand_total_ms: float
    span_deltas: "List[SpanDelta]" = field(default_factory=list)
    regressions: "List[Attribution]" = field(default_factory=list)
    counter_deltas: "List[MetricDelta]" = field(default_factory=list)
    gauge_deltas: "List[MetricDelta]" = field(default_factory=list)
    histogram_deltas: "List[MetricDelta]" = field(default_factory=list)
    correctness_drift: "List[TaskDrift]" = field(default_factory=list)
    tasks_added: "List[str]" = field(default_factory=list)
    tasks_removed: "List[str]" = field(default_factory=list)
    newly_cached: "List[str]" = field(default_factory=list)
    newly_uncached: "List[str]" = field(default_factory=list)
    matched_tasks: int = 0

    @property
    def total_delta_ms(self) -> float:
        """The run-total traced-time delta (candidate minus base)."""
        return self.cand_total_ms - self.base_total_ms

    @property
    def has_regressions(self) -> bool:
        """True when any root span regressed past the thresholds."""
        return bool(self.regressions)

    @property
    def has_drift(self) -> bool:
        """True when any matched task produced a different answer."""
        return bool(self.correctness_drift)

    def to_dict(self) -> "Dict[str, Any]":
        """The diff as one JSON-ready document (``repro runs diff --format
        json`` / ``--json-out``)."""
        return {
            "base": {
                "run_id": self.base_run_id,
                "command": self.base_command,
                "model_schema_version": self.base_model_version,
                "total_ms": round(self.base_total_ms, 6),
            },
            "cand": {
                "run_id": self.cand_run_id,
                "command": self.cand_command,
                "model_schema_version": self.cand_model_version,
                "total_ms": round(self.cand_total_ms, 6),
            },
            "schema_mismatch": self.schema_mismatch,
            "total_delta_ms": round(self.total_delta_ms, 6),
            "spans": [delta.to_dict() for delta in self.span_deltas],
            "regressions": [attr.to_dict() for attr in self.regressions],
            "metrics": {
                "counters": [d.to_dict() for d in self.counter_deltas],
                "gauges": [d.to_dict() for d in self.gauge_deltas],
                "histograms": [d.to_dict() for d in self.histogram_deltas],
            },
            "tasks": {
                "matched": self.matched_tasks,
                "correctness_drift": [
                    drift.to_dict() for drift in self.correctness_drift
                ],
                "added": list(self.tasks_added),
                "removed": list(self.tasks_removed),
                "newly_cached": list(self.newly_cached),
                "newly_uncached": list(self.newly_uncached),
            },
        }


# ---------------------------------------------------------------------------
# Span alignment.
# ---------------------------------------------------------------------------


def _stat(stats: "Dict[str, Any]", key: str) -> float:
    value = stats.get(key, 0.0)
    return float(value) if isinstance(value, (int, float)) else 0.0


def _span_deltas(base: RunRecord, cand: RunRecord) -> "List[SpanDelta]":
    base_stats = base.span_stats()
    cand_stats = cand.span_stats()
    deltas: "List[SpanDelta]" = []
    for name in sorted(set(base_stats) | set(cand_stats)):
        in_base, in_cand = name in base_stats, name in cand_stats
        b = base_stats.get(name, {})
        c = cand_stats.get(name, {})
        deltas.append(
            SpanDelta(
                name=name,
                status="common" if in_base and in_cand else ("added" if in_cand else "removed"),
                base_calls=int(_stat(b, "calls")),
                cand_calls=int(_stat(c, "calls")),
                base_cum_ms=_stat(b, "cum_ms"),
                cand_cum_ms=_stat(c, "cum_ms"),
                delta_cum_ms=_stat(c, "cum_ms") - _stat(b, "cum_ms"),
                delta_self_ms=_stat(c, "self_ms") - _stat(b, "self_ms"),
            )
        )
    deltas.sort(key=lambda d: -abs(d.delta_cum_ms))
    return deltas


def _node_cum(node: "Optional[Dict[str, Any]]") -> float:
    return _stat(node, "cum_ms") if node is not None else 0.0


def _children(node: "Optional[Dict[str, Any]]") -> "Dict[str, Dict[str, Any]]":
    if node is None:
        return {}
    children = node.get("children", [])
    if not isinstance(children, list):
        return {}
    return {
        str(child["name"]): child
        for child in children
        if isinstance(child, dict) and "name" in child
    }


def _is_regression(
    base_ms: float, delta_ms: float, rel_threshold: float, abs_threshold_ms: float
) -> bool:
    return delta_ms > abs_threshold_ms and delta_ms > rel_threshold * base_ms


def _attribute(
    root_name: str,
    base_root: "Optional[Dict[str, Any]]",
    cand_root: "Dict[str, Any]",
    explain_fraction: float,
) -> Attribution:
    """Walk one regressed root down to its deepest explaining path."""
    root_delta = _node_cum(cand_root) - _node_cum(base_root)
    path = [root_name]
    base_node, cand_node = base_root, cand_root
    current_delta = root_delta
    while True:
        base_children = _children(base_node)
        cand_children = _children(cand_node)
        best_name: Optional[str] = None
        best_delta = 0.0
        for name, child in cand_children.items():
            delta = _node_cum(child) - _node_cum(base_children.get(name))
            if delta > best_delta:
                best_name, best_delta = name, delta
        if best_name is None or best_delta < explain_fraction * current_delta:
            break
        path.append(best_name)
        base_node = base_children.get(best_name)
        cand_node = cand_children[best_name]
        current_delta = best_delta
    return Attribution(
        path=path,
        root_delta_ms=root_delta,
        delta_ms=current_delta,
        base_ms=_node_cum(base_node),
        cand_ms=_node_cum(cand_node),
        share=(current_delta / root_delta) if root_delta else 1.0,
    )


def _regressions(
    base: RunRecord,
    cand: RunRecord,
    rel_threshold: float,
    abs_threshold_ms: float,
    explain_fraction: float,
) -> "List[Attribution]":
    base_roots = {
        str(node["name"]): node
        for node in base.tree()
        if isinstance(node, dict) and "name" in node
    }
    attributions: "List[Attribution]" = []
    for node in cand.tree():
        if not isinstance(node, dict) or "name" not in node:
            continue
        name = str(node["name"])
        base_node = base_roots.get(name)
        delta = _node_cum(node) - _node_cum(base_node)
        if _is_regression(_node_cum(base_node), delta, rel_threshold, abs_threshold_ms):
            attributions.append(
                _attribute(name, base_node, node, explain_fraction)
            )
    attributions.sort(key=lambda a: -a.root_delta_ms)
    return attributions


# ---------------------------------------------------------------------------
# Metric alignment.
# ---------------------------------------------------------------------------


def _normalized_scalars(mapping: Any) -> "Dict[str, float]":
    if not isinstance(mapping, dict):
        return {}
    normalized: "Dict[str, float]" = {}
    for name, value in mapping.items():
        if isinstance(value, (int, float)):
            normalized[prom_metric_name(str(name))] = float(value)
    return normalized


def _scalar_deltas(
    base_map: "Dict[str, float]", cand_map: "Dict[str, float]", kind: str
) -> "List[MetricDelta]":
    deltas: "List[MetricDelta]" = []
    for name in sorted(set(base_map) | set(cand_map)):
        base_value = base_map.get(name)
        cand_value = cand_map.get(name)
        deltas.append(
            MetricDelta(
                name=name,
                kind=kind,
                base=base_value,
                cand=cand_value,
                delta=(cand_value or 0.0) - (base_value or 0.0),
            )
        )
    return deltas


def _normalized_histograms(mapping: Any) -> "Dict[str, Dict[str, Any]]":
    if not isinstance(mapping, dict):
        return {}
    return {
        prom_metric_name(str(name)): stats
        for name, stats in mapping.items()
        if isinstance(stats, dict)
    }


def _histogram_deltas(base: Any, cand: Any) -> "List[MetricDelta]":
    base_map = _normalized_histograms(base)
    cand_map = _normalized_histograms(cand)
    deltas: "List[MetricDelta]" = []
    for name in sorted(set(base_map) | set(cand_map)):
        b = base_map.get(name)
        c = cand_map.get(name)
        base_total = _stat(b, "total") if b is not None else None
        cand_total = _stat(c, "total") if c is not None else None
        base_count = int(_stat(b, "count")) if b is not None else None
        cand_count = int(_stat(c, "count")) if c is not None else None
        deltas.append(
            MetricDelta(
                name=name,
                kind="histogram",
                base=base_total,
                cand=cand_total,
                delta=(cand_total or 0.0) - (base_total or 0.0),
                base_count=base_count,
                cand_count=cand_count,
                delta_count=(cand_count or 0) - (base_count or 0),
            )
        )
    return deltas


# ---------------------------------------------------------------------------
# Task alignment.
# ---------------------------------------------------------------------------


def _keyed_tasks(record: RunRecord) -> "Dict[str, Dict[str, Any]]":
    keyed: "Dict[str, Dict[str, Any]]" = {}
    for task in record.tasks():
        if not isinstance(task, dict):
            continue
        key = task.get("key")
        if isinstance(key, str) and key:
            keyed[key] = task
    return keyed


def _task_alignment(
    base: RunRecord, cand: RunRecord
) -> "Tuple[List[TaskDrift], List[str], List[str], List[str], List[str], int]":
    base_tasks = _keyed_tasks(base)
    cand_tasks = _keyed_tasks(cand)
    drift: "List[TaskDrift]" = []
    newly_cached: "List[str]" = []
    newly_uncached: "List[str]" = []
    matched = 0
    for key in sorted(set(base_tasks) & set(cand_tasks)):
        matched += 1
        b, c = base_tasks[key], cand_tasks[key]
        base_digest = b.get("digest")
        cand_digest = c.get("digest")
        if (
            isinstance(base_digest, str)
            and isinstance(cand_digest, str)
            and base_digest != cand_digest
        ):
            drift.append(
                TaskDrift(
                    key=key,
                    task=str(c.get("task", "?")),
                    label=None if c.get("label") is None else str(c.get("label")),
                    base_digest=base_digest,
                    cand_digest=cand_digest,
                )
            )
        base_cached = bool(b.get("cached"))
        cand_cached = bool(c.get("cached"))
        if cand_cached and not base_cached:
            newly_cached.append(key)
        elif base_cached and not cand_cached:
            newly_uncached.append(key)
    added = sorted(set(cand_tasks) - set(base_tasks))
    removed = sorted(set(base_tasks) - set(cand_tasks))
    return drift, added, removed, newly_cached, newly_uncached, matched


# ---------------------------------------------------------------------------
# The entry point.
# ---------------------------------------------------------------------------


def diff_runs(
    base: RunRecord,
    cand: RunRecord,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    abs_threshold_ms: float = DEFAULT_ABS_THRESHOLD_MS,
    explain_fraction: float = DEFAULT_EXPLAIN_FRACTION,
) -> RunDiff:
    """Structurally diff two runs: ``cand`` relative to ``base``.

    Pure over the two loaded records — nothing is re-executed, no file
    is written.  ``schema_mismatch`` is set when the two runs carry
    different model schema versions: their task keys then live in
    disjoint key spaces (every model change re-keys every task), so the
    task join will match nothing and correctness comparisons are
    meaningless — the span and metric diffs remain valid.
    """
    base_metrics = base.metrics()
    cand_metrics = cand.metrics()
    drift, added, removed, newly_cached, newly_uncached, matched = _task_alignment(
        base, cand
    )
    mismatch = (
        base.model_schema_version is not None
        and cand.model_schema_version is not None
        and base.model_schema_version != cand.model_schema_version
    )
    return RunDiff(
        base_run_id=base.run_id,
        cand_run_id=cand.run_id,
        base_command=base.command,
        cand_command=cand.command,
        schema_mismatch=mismatch,
        base_model_version=base.model_schema_version,
        cand_model_version=cand.model_schema_version,
        base_total_ms=_stat(base.rollup(), "total_ms"),
        cand_total_ms=_stat(cand.rollup(), "total_ms"),
        span_deltas=_span_deltas(base, cand),
        regressions=_regressions(
            base, cand, rel_threshold, abs_threshold_ms, explain_fraction
        ),
        counter_deltas=_scalar_deltas(
            _normalized_scalars(base_metrics.get("counters")),
            _normalized_scalars(cand_metrics.get("counters")),
            "counter",
        ),
        gauge_deltas=_scalar_deltas(
            _normalized_scalars(base_metrics.get("gauges")),
            _normalized_scalars(cand_metrics.get("gauges")),
            "gauge",
        ),
        histogram_deltas=_histogram_deltas(
            base_metrics.get("histograms"), cand_metrics.get("histograms")
        ),
        correctness_drift=drift,
        tasks_added=added,
        tasks_removed=removed,
        newly_cached=newly_cached,
        newly_uncached=newly_uncached,
        matched_tasks=matched,
    )
