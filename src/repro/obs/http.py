"""A stdlib HTTP endpoint serving live telemetry during a run.

:class:`TelemetryServer` wraps a daemon-threaded
:class:`~http.server.ThreadingHTTPServer` bound to localhost and
serves three routes straight from the live process state:

* ``GET /metrics`` — the current metrics registry in the
  OpenMetrics/Prometheus text exposition (what a Prometheus scraper
  or ``curl`` polls mid-sweep);
* ``GET /healthz`` — ``{"status": "ok", "run_id": ...}``, a liveness
  probe;
* ``GET /progress`` — the latest progress heartbeat as JSON (empty
  object before the first sweep starts).

The server is intentionally read-only and unauthenticated — it binds
``127.0.0.1`` by default and exists for local scraping and CI smoke
tests, the first brick of the ROADMAP's evaluation-as-a-service front
door.  Request logging is suppressed entirely so ``--serve-metrics``
can never pollute machine-readable stdout.

Port 0 asks the OS for a free port; :meth:`TelemetryServer.start`
returns the bound port and registers the instance with
:func:`active_server` so out-of-process harnesses (the CI smoke
script) can discover it.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from .context import get_run_id
from .export import openmetrics_text
from .metrics import MetricsRegistry, get_metrics
from .progress import get_progress

#: Content type of the OpenMetrics exposition, per the spec.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_ACTIVE: "Optional[TelemetryServer]" = None
_ACTIVE_LOCK = threading.Lock()


def active_server() -> "Optional[TelemetryServer]":
    """The currently started :class:`TelemetryServer`, if any."""
    with _ACTIVE_LOCK:
        return _ACTIVE


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    telemetry: "TelemetryServer"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        """Quiet: telemetry must never write to stdout/stderr."""

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        telemetry = self.server.telemetry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            body = openmetrics_text(
                telemetry.registry_now(), run_id=telemetry.run_id
            )
            self._reply(200, OPENMETRICS_CONTENT_TYPE, body.encode("utf-8"))
        elif path == "/healthz":
            payload = {"status": "ok", "run_id": telemetry.run_id}
            self._reply_json(200, payload)
        elif path == "/progress":
            self._reply_json(200, telemetry.progress_now())
        else:
            self._reply_json(404, {"error": f"unknown path {path!r}"})

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, code: int, payload: Any) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._reply(code, "application/json; charset=utf-8", body)


class TelemetryServer:
    """Serves ``/metrics``, ``/healthz`` and ``/progress`` for one run.

    ``registry`` and ``progress`` may be passed explicitly (the CLI
    binds the instances it installed) or left None to resolve the
    process-global instruments at request time — either way every
    request sees the *live* state, not a snapshot.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
        progress: Optional[Any] = None,
        run_id: Optional[str] = None,
    ):
        self.host = host
        self.requested_port = port
        self.port: Optional[int] = None
        self._registry = registry
        self._progress = progress
        self._run_id = run_id
        self._httpd: Optional[_TelemetryHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def run_id(self) -> str:
        return self._run_id if self._run_id is not None else get_run_id()

    def registry_now(self) -> MetricsRegistry:
        """The registry requests read from (bound or process-global)."""
        return self._registry if self._registry is not None else get_metrics()

    def progress_now(self) -> Any:
        """The latest progress heartbeat ({} before the first)."""
        source = self._progress if self._progress is not None else get_progress()
        latest = getattr(source, "latest", None)
        return latest if latest is not None else {}

    @property
    def url(self) -> str:
        """The server's base URL (valid after :meth:`start`)."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> int:
        """Bind, start the daemon serving thread, return the port."""
        global _ACTIVE
        if self._httpd is not None:
            assert self.port is not None
            return self.port
        httpd = _TelemetryHTTPServer((self.host, self.requested_port), _Handler)
        httpd.telemetry = self
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name=f"repro-telemetry-{self.port}",
            daemon=True,
        )
        self._thread.start()
        with _ACTIVE_LOCK:
            _ACTIVE = self
        return self.port

    def stop(self) -> None:
        """Shut the server down and release the port (idempotent)."""
        global _ACTIVE
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        with _ACTIVE_LOCK:
            if _ACTIVE is self:
                _ACTIVE = None

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
