"""Observability: structured tracing, metrics and evaluation provenance.

Zero-dependency instrumentation for the evaluation pipeline:

* :mod:`repro.obs.spans` — the :class:`Span` tree node: one timed
  operation, with attributes and nested children;
* :mod:`repro.obs.tracer` — the :class:`Tracer` collecting span trees,
  plus the injectable process-global current tracer (a no-op
  :data:`NULL_TRACER` by default, so instrumented code pays a single
  attribute check when tracing is off);
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of counters,
  gauges and histograms (``evaluate.calls``, ``recovery.plan_ms``,
  ``optimizer.designs_pruned``, ``sim.events_processed``, ...), also
  no-op by default;
* :mod:`repro.obs.provenance` — the :class:`EvaluationProvenance`
  record attached to every :class:`~repro.core.results.Assessment`:
  which recovery source was chosen, why planning failed, which penalty
  term and outlay dominated, validation warnings, per-phase timings;
* :mod:`repro.obs.profile` — span aggregation into per-name and
  per-call-path profiles (call counts, cumulative and self time; the
  CLI's ``--profile``);
* :mod:`repro.obs.export` — JSON-lines export/import of span trees and
  metric snapshots (the CLI's ``--trace-out``), plus the
  OpenMetrics/Prometheus text exposition of a metrics registry;
* :mod:`repro.obs.context` — cross-process trace propagation: the
  :class:`TraceContext` shipped with each dispatched task chunk, the
  worker-side :class:`TelemetryCapture`, and the
  :class:`TelemetryCapsule` of spans/metric-deltas merged back into
  the parent (:func:`merge_capsule`);
* :mod:`repro.obs.progress` — the live sweep progress reporter
  (throttled stderr one-liner + machine heartbeats), injectable like
  the tracer (:func:`get_progress` / :func:`set_progress`);
* :mod:`repro.obs.ledger` — the per-run artifact directory
  (``manifest.json``, ``spans.jsonl``, ``metrics.prom``,
  ``progress.jsonl``) behind the CLI's ``--run-dir``;
* :mod:`repro.obs.http` — the ``/metrics`` / ``/healthz`` /
  ``/progress`` HTTP endpoint behind ``--serve-metrics``.

Enable everything for one block of code::

    from repro import obs

    with obs.use_tracer(obs.Tracer()) as tracer, \\
         obs.use_metrics(obs.MetricsRegistry()) as registry:
        assessment = repro.evaluate(design, workload, scenario, reqs)
    print(assessment.provenance.describe())
"""

from .spans import Span
from .tracer import NULL_TRACER, NullTracer, Tracer, get_tracer, set_tracer, use_tracer
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from .provenance import EvaluationProvenance, explain_assessment
from .profile import (
    PathNode,
    Profile,
    ProfileEntry,
    build_profile,
    skeleton_digest,
    span_skeleton,
)
from .export import (
    metric_records,
    openmetrics_text,
    read_trace_jsonl,
    span_records,
    write_openmetrics,
    write_trace_jsonl,
)
from .context import (
    TelemetryCapsule,
    TelemetryCapture,
    TraceContext,
    current_context,
    get_run_id,
    merge_capsule,
    new_run_id,
    set_run_id,
)
from .progress import (
    NULL_PROGRESS,
    NullProgress,
    ProgressReporter,
    get_progress,
    set_progress,
    use_progress,
)
from .ledger import MANIFEST_SCHEMA, ManifestError, RunLedger, read_manifest, span_rollup
from .http import TelemetryServer, active_server
from .runs import (
    NULL_TASK_LOG,
    NullTaskLog,
    RunLookupError,
    RunRecord,
    RunStore,
    TaskLog,
    get_task_log,
    resolve_run,
    set_task_log,
    use_task_log,
)
from .diff import (
    Attribution,
    MetricDelta,
    RunDiff,
    SpanDelta,
    TaskDrift,
    diff_runs,
)


def reset() -> None:
    """Restore the no-op defaults: tracer, metrics, progress, run ID,
    task log."""
    set_tracer(None)
    set_metrics(None)
    set_progress(None)
    set_run_id(None)
    set_task_log(None)


__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "EvaluationProvenance",
    "explain_assessment",
    "Profile",
    "ProfileEntry",
    "PathNode",
    "build_profile",
    "span_skeleton",
    "skeleton_digest",
    "span_records",
    "metric_records",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "openmetrics_text",
    "write_openmetrics",
    "TraceContext",
    "TelemetryCapture",
    "TelemetryCapsule",
    "current_context",
    "merge_capsule",
    "new_run_id",
    "get_run_id",
    "set_run_id",
    "NullProgress",
    "NULL_PROGRESS",
    "ProgressReporter",
    "get_progress",
    "set_progress",
    "use_progress",
    "MANIFEST_SCHEMA",
    "ManifestError",
    "RunLedger",
    "read_manifest",
    "span_rollup",
    "TelemetryServer",
    "active_server",
    "NullTaskLog",
    "NULL_TASK_LOG",
    "TaskLog",
    "get_task_log",
    "set_task_log",
    "use_task_log",
    "RunLookupError",
    "RunRecord",
    "RunStore",
    "resolve_run",
    "Attribution",
    "MetricDelta",
    "RunDiff",
    "SpanDelta",
    "TaskDrift",
    "diff_runs",
    "reset",
]
