"""Observability: structured tracing, metrics and evaluation provenance.

Zero-dependency instrumentation for the evaluation pipeline:

* :mod:`repro.obs.spans` — the :class:`Span` tree node: one timed
  operation, with attributes and nested children;
* :mod:`repro.obs.tracer` — the :class:`Tracer` collecting span trees,
  plus the injectable process-global current tracer (a no-op
  :data:`NULL_TRACER` by default, so instrumented code pays a single
  attribute check when tracing is off);
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of counters,
  gauges and histograms (``evaluate.calls``, ``recovery.plan_ms``,
  ``optimizer.designs_pruned``, ``sim.events_processed``, ...), also
  no-op by default;
* :mod:`repro.obs.provenance` — the :class:`EvaluationProvenance`
  record attached to every :class:`~repro.core.results.Assessment`:
  which recovery source was chosen, why planning failed, which penalty
  term and outlay dominated, validation warnings, per-phase timings;
* :mod:`repro.obs.profile` — span aggregation into per-name and
  per-call-path profiles (call counts, cumulative and self time; the
  CLI's ``--profile``);
* :mod:`repro.obs.export` — JSON-lines export/import of span trees and
  metric snapshots (the CLI's ``--trace-out``), plus the
  OpenMetrics/Prometheus text exposition of a metrics registry.

Enable everything for one block of code::

    from repro import obs

    with obs.use_tracer(obs.Tracer()) as tracer, \\
         obs.use_metrics(obs.MetricsRegistry()) as registry:
        assessment = repro.evaluate(design, workload, scenario, reqs)
    print(assessment.provenance.describe())
"""

from .spans import Span
from .tracer import NULL_TRACER, NullTracer, Tracer, get_tracer, set_tracer, use_tracer
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from .provenance import EvaluationProvenance, explain_assessment
from .profile import PathNode, Profile, ProfileEntry, build_profile
from .export import (
    metric_records,
    openmetrics_text,
    read_trace_jsonl,
    span_records,
    write_openmetrics,
    write_trace_jsonl,
)


def reset() -> None:
    """Restore the no-op defaults for both the tracer and the metrics."""
    set_tracer(None)
    set_metrics(None)


__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "EvaluationProvenance",
    "explain_assessment",
    "Profile",
    "ProfileEntry",
    "PathNode",
    "build_profile",
    "span_records",
    "metric_records",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "openmetrics_text",
    "write_openmetrics",
    "reset",
]
