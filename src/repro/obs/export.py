"""Trace/metric export: JSON lines and OpenMetrics text exposition.

The JSONL wire format is one JSON object per line, each tagged with a
``kind``:

* ``{"kind": "span", "name": ..., "parent": ..., "depth": ...,
  "start_ms": ..., "end_ms": ..., "duration_ms": ..., "status": "ok" |
  "error", "attributes": {...}}`` — spans in depth-first order, so a
  reader can rebuild the tree from ``depth`` alone; errored spans
  additionally carry ``error_type`` / ``error_message``;
* ``{"kind": "counter" | "gauge" | "histogram", "name": ..., ...}`` —
  one line per instrument of the metrics snapshot.

Readers ignore lines whose ``kind`` they do not know, keeping the
format forward-compatible.

:func:`openmetrics_text` renders a metrics registry in the
Prometheus/OpenMetrics text exposition format (the building block for
a future ``/metrics`` endpoint): counters as ``<name>_total``, gauges
verbatim, histograms as cumulative ``_bucket{le="..."}`` series plus
``_sum``/``_count``, terminated by ``# EOF``.
"""

from __future__ import annotations

import json
import re
from typing import IO, Any, Dict, List, Optional, Union

from .metrics import BUCKET_BOUNDS, OVERFLOW_BUCKET, Histogram, MetricsRegistry
from .tracer import Tracer


def span_records(tracer: Tracer) -> "List[Dict[str, Any]]":
    """Flatten a tracer's span trees into depth-first dict records."""
    records: "List[Dict[str, Any]]" = []

    def visit(span, parent: Optional[str], depth: int) -> None:
        records.append(span.to_dict(parent=parent, depth=depth))
        for child in span.children:
            visit(child, span.name, depth + 1)

    for root in tracer.roots:
        visit(root, None, 0)
    return records


def metric_records(registry: MetricsRegistry) -> "List[Dict[str, Any]]":
    """One dict record per instrument in the registry's snapshot."""
    snapshot = registry.snapshot()
    records: "List[Dict[str, Any]]" = []
    for name, value in snapshot["counters"].items():
        records.append({"kind": "counter", "name": name, "value": value})
    for name, value in snapshot["gauges"].items():
        records.append({"kind": "gauge", "name": name, "value": value})
    for name, stats in snapshot["histograms"].items():
        records.append({"kind": "histogram", "name": name, **stats})
    return records


def write_trace_jsonl(
    destination: "Union[str, IO[str]]",
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Write span and/or metric records as JSON lines.

    ``destination`` is a path or an open text file.  Returns the number
    of records written.
    """
    records: "List[Dict[str, Any]]" = []
    if tracer is not None:
        for record in span_records(tracer):
            records.append({"kind": "span", **record})
    if metrics is not None:
        records.extend(metric_records(metrics))
    # One buffered write of compactly-encoded lines: the run ledger
    # dumps hundreds of spans per sweep, so per-record write() calls
    # and default (spaced) JSON encoding would dominate the cost.
    dumps = json.dumps
    text = "".join(
        dumps(record, separators=(",", ":")) + "\n" for record in records
    )
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return len(records)


_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    """A Prometheus-legal metric name (dots and dashes become ``_``)."""
    sanitized = _INVALID_METRIC_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def prom_metric_name(name: str) -> str:
    """The exposition name an instrument appears under in ``.prom``.

    The public face of the sanitizer: :mod:`repro.obs.diff` normalizes
    through it so a v2 manifest's dotted instrument names compare equal
    to the sanitized names recovered from a v1 ledger's ``metrics.prom``.
    """
    return _metric_name(name)


def _format_value(value: float) -> str:
    """A float rendered the way Prometheus parsers expect."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _histogram_lines(name: str, histogram: Histogram) -> "List[str]":
    """The ``_bucket``/``_sum``/``_count`` sample lines of one histogram.

    Buckets are cumulative; empty buckets are elided (the format does
    not require every boundary to appear) and the mandatory
    ``le="+Inf"`` bucket always closes the series.
    """
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for index in sorted(histogram.buckets):
        if index >= OVERFLOW_BUCKET:
            break
        cumulative += histogram.buckets[index]
        bound = _format_value(BUCKET_BOUNDS[index])
        lines.append(f'{name}_bucket{{le="{bound}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {histogram.count}')
    lines.append(f"{name}_sum {_format_value(histogram.total)}")
    lines.append(f"{name}_count {histogram.count}")
    return lines


def openmetrics_text(
    registry: MetricsRegistry, run_id: Optional[str] = None
) -> str:
    """The registry in OpenMetrics/Prometheus text exposition format.

    Instrument names are sanitized (``evaluate.calls`` becomes
    ``evaluate_calls``), counters gain the ``_total`` sample suffix,
    and the exposition ends with the OpenMetrics ``# EOF`` marker.

    With a ``run_id``, the exposition opens with an ``info``-style
    metric — ``repro_run_info{run_id="..."} 1`` — so scraped series
    can be joined back to the run ledger directory that archived them.
    """
    lines: "List[str]" = []
    if run_id is not None:
        escaped = run_id.replace("\\", "\\\\").replace('"', '\\"')
        lines.append("# TYPE repro_run info")
        lines.append(f'repro_run_info{{run_id="{escaped}"}} 1')
    for name, counter in sorted(registry.counters.items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(counter.value)}")
    for name, gauge in sorted(registry.gauges.items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.value)}")
    for name, histogram in sorted(registry.histograms.items()):
        lines.extend(_histogram_lines(_metric_name(name), histogram))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    destination: "Union[str, IO[str]]",
    registry: MetricsRegistry,
    run_id: Optional[str] = None,
) -> int:
    """Write the OpenMetrics exposition; returns the character count."""
    text = openmetrics_text(registry, run_id=run_id)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return len(text)


def read_trace_jsonl(source: "Union[str, IO[str]]") -> "List[Dict[str, Any]]":
    """Read back the records of a JSONL trace file (blank lines skipped)."""
    if isinstance(source, str):
        with open(source) as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    records = []
    for line in lines:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
