"""JSON-lines export/import of traces and metric snapshots.

The wire format is one JSON object per line, each tagged with a
``kind``:

* ``{"kind": "span", "name": ..., "parent": ..., "depth": ...,
  "start_ms": ..., "end_ms": ..., "duration_ms": ..., "attributes": {...}}``
  — spans in depth-first order, so a reader can rebuild the tree from
  ``depth`` alone;
* ``{"kind": "counter" | "gauge" | "histogram", "name": ..., ...}`` —
  one line per instrument of the metrics snapshot.

Readers ignore lines whose ``kind`` they do not know, keeping the
format forward-compatible.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Union

from .metrics import MetricsRegistry
from .tracer import Tracer


def span_records(tracer: Tracer) -> "List[Dict[str, Any]]":
    """Flatten a tracer's span trees into depth-first dict records."""
    records: "List[Dict[str, Any]]" = []

    def visit(span, parent: Optional[str], depth: int) -> None:
        records.append(span.to_dict(parent=parent, depth=depth))
        for child in span.children:
            visit(child, span.name, depth + 1)

    for root in tracer.roots:
        visit(root, None, 0)
    return records


def metric_records(registry: MetricsRegistry) -> "List[Dict[str, Any]]":
    """One dict record per instrument in the registry's snapshot."""
    snapshot = registry.snapshot()
    records: "List[Dict[str, Any]]" = []
    for name, value in snapshot["counters"].items():
        records.append({"kind": "counter", "name": name, "value": value})
    for name, value in snapshot["gauges"].items():
        records.append({"kind": "gauge", "name": name, "value": value})
    for name, stats in snapshot["histograms"].items():
        records.append({"kind": "histogram", "name": name, **stats})
    return records


def write_trace_jsonl(
    destination: "Union[str, IO[str]]",
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Write span and/or metric records as JSON lines.

    ``destination`` is a path or an open text file.  Returns the number
    of records written.
    """
    records: "List[Dict[str, Any]]" = []
    if tracer is not None:
        for record in span_records(tracer):
            records.append({"kind": "span", **record})
    if metrics is not None:
        records.extend(metric_records(metrics))
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
    else:
        for record in records:
            destination.write(json.dumps(record) + "\n")
    return len(records)


def read_trace_jsonl(source: "Union[str, IO[str]]") -> "List[Dict[str, Any]]":
    """Read back the records of a JSONL trace file (blank lines skipped)."""
    if isinstance(source, str):
        with open(source) as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    records = []
    for line in lines:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
