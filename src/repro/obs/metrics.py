"""A process-local metrics registry: counters, gauges and histograms.

Instruments are created on first use and keyed by dotted names
(``evaluate.calls``, ``recovery.plan_ms``, ``sim.events_processed``).
The process default, :data:`NULL_METRICS`, discards every emission, so
instrumented code costs a no-op method call when metrics are off;
callers opt in with :func:`set_metrics` / :func:`use_metrics`.

:class:`Histogram` keeps fixed log-spaced buckets alongside the exact
count/total/min/max, so p50/p90/p99 are estimable from any snapshot
without retaining observations, and the bucket layout is identical for
every histogram (what the OpenMetrics exporter relies on).

:class:`MetricsRegistry` is thread-safe: instrument creation and the
one-shot emission helpers (:meth:`~MetricsRegistry.inc`,
:meth:`~MetricsRegistry.set_gauge`, :meth:`~MetricsRegistry.observe`),
``snapshot`` and ``reset`` hold one registry lock.  The disabled
registry stays lock-free: its helpers are pure no-ops.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Tuple


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value; each set replaces the last."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


#: Shared log-spaced bucket upper bounds: four buckets per decade from
#: 1e-7 to 1e9 (values beyond the last bound land in an overflow
#: bucket).  Quarter-decade buckets bound the within-bucket percentile
#: interpolation error by a factor of 10**0.25 ~ 1.78 before min/max
#: clamping tightens it further.
BUCKET_BOUNDS: "Tuple[float, ...]" = tuple(
    10.0 ** (exponent / 4.0) for exponent in range(-28, 37)
)

#: The bucket index past the last bound (``le="+Inf"`` in exports).
OVERFLOW_BUCKET = len(BUCKET_BOUNDS)


@dataclass
class Histogram:
    """Observed-value summary: exact count/total/min/max plus fixed
    log-spaced buckets for percentile estimation.

    ``buckets`` maps an index into :data:`BUCKET_BOUNDS` (the bucket's
    upper bound; :data:`OVERFLOW_BUCKET` for values beyond the last
    bound) to the number of observations that landed there.  Only
    non-empty buckets are stored.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    buckets: "Dict[int, int]" = field(default_factory=dict)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        index = bisect_left(BUCKET_BOUNDS, value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Average of the observations (0.0 before the first)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> float:
        """Estimate the value at ``quantile`` (in [0, 1]) from buckets.

        Linear interpolation within the containing bucket, clamped to
        the exact observed min/max (so estimates never fall outside the
        observed range and single-observation histograms are exact).
        Returns 0.0 before the first observation.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile!r}")
        if not self.count or self.min is None or self.max is None:
            return 0.0
        target = quantile * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            if cumulative + in_bucket >= target:
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < OVERFLOW_BUCKET
                    else self.max
                )
                fraction = (target - cumulative) / in_bucket
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += in_bucket
        return self.max

    def state(self) -> "Dict[str, Any]":
        """The histogram's complete, JSON/pickle-friendly state —
        unlike the snapshot summary, buckets are included, so another
        histogram can merge this one losslessly."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(index): n for index, n in sorted(self.buckets.items())},
        }

    def merge_state(self, state: "Dict[str, Any]") -> None:
        """Fold another histogram's :meth:`state` into this one.

        Counts, totals and buckets add; min/max widen.  Because every
        histogram shares the same fixed bucket layout, the merged
        buckets are exactly what one histogram observing both streams
        would hold — percentile estimates are preserved.
        """
        count = int(state.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(state.get("total", 0.0))
        other_min = state.get("min")
        if other_min is not None:
            self.min = other_min if self.min is None else min(self.min, other_min)
        other_max = state.get("max")
        if other_max is not None:
            self.max = other_max if self.max is None else max(self.max, other_max)
        for index, n in state.get("buckets", {}).items():
            key = int(index)
            self.buckets[key] = self.buckets.get(key, 0) + int(n)

    def merge(self, other: "Histogram") -> None:
        """Fold another live histogram into this one."""
        self.merge_state(other.state())

    @property
    def p50(self) -> float:
        """Estimated median."""
        return self.percentile(0.50)

    @property
    def p90(self) -> float:
        """Estimated 90th percentile."""
        return self.percentile(0.90)

    @property
    def p99(self) -> float:
        """Estimated 99th percentile."""
        return self.percentile(0.99)


@dataclass
class MetricsRegistry:
    """Holds every instrument of one process (or one test).

    Instrument creation, the one-shot emission helpers, ``snapshot``
    and ``reset`` are serialized on one registry lock, so concurrent
    workers can share a registry.  Mutating an instrument through a
    retained handle bypasses the lock — hot paths emit through the
    helpers instead.
    """

    counters: "Dict[str, Counter]" = field(default_factory=dict)
    gauges: "Dict[str, Gauge]" = field(default_factory=dict)
    histograms: "Dict[str, Histogram]" = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    enabled = True

    # -- instrument access (create on first use) ------------------------------

    @staticmethod
    def _instrument(table: "Dict[str, Any]", factory: "Callable[[str], Any]", name: str) -> Any:
        """Fetch-or-create without locking (callers hold the lock)."""
        try:
            return table[name]
        except KeyError:
            instrument = table[name] = factory(name)
            return instrument

    def counter(self, name: str) -> Counter:
        """The named counter, created at zero if new."""
        with self._lock:
            return self._instrument(self.counters, Counter, name)

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created at zero if new."""
        with self._lock:
            return self._instrument(self.gauges, Gauge, name)

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created empty if new."""
        with self._lock:
            return self._instrument(self.histograms, Histogram, name)

    # -- one-shot emission helpers (what the hot paths call) ------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the named counter."""
        with self._lock:
            self._instrument(self.counters, Counter, name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge."""
        with self._lock:
            self._instrument(self.gauges, Gauge, name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation on the named histogram."""
        with self._lock:
            self._instrument(self.histograms, Histogram, name).observe(value)

    # -- lifecycle ------------------------------------------------------------

    def snapshot(self) -> "Dict[str, Any]":
        """A JSON-friendly copy of every instrument's current state."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self.counters.items())},
                "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
                "histograms": {
                    name: {
                        "count": h.count,
                        "total": h.total,
                        "mean": h.mean,
                        "min": h.min,
                        "max": h.max,
                        "p50": h.p50,
                        "p90": h.p90,
                        "p99": h.p99,
                    }
                    for name, h in sorted(self.histograms.items())
                },
            }

    def state(self) -> "Dict[str, Any]":
        """The registry's complete state, histogram buckets included.

        The cross-process wire form: a worker's capture registry
        starts empty, so its counter values are *deltas* relative to
        the parent, ready for :meth:`merge_state` to sum.
        """
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self.counters.items())},
                "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
                "histograms": {
                    name: h.state() for name, h in sorted(self.histograms.items())
                },
            }

    def merge_state(self, state: "Dict[str, Any]") -> None:
        """Fold another registry's :meth:`state` into this one.

        Counter values are treated as deltas and summed; gauges are
        applied last-write-wins (callers merge capsules in submission
        order, so the surviving value matches a serial run); histogram
        buckets merge losslessly.
        """
        with self._lock:
            for name, delta in state.get("counters", {}).items():
                self._instrument(self.counters, Counter, name).inc(delta)
            for name, value in state.get("gauges", {}).items():
                self._instrument(self.gauges, Gauge, name).set(value)
            for name, histogram_state in state.get("histograms", {}).items():
                self._instrument(self.histograms, Histogram, name).merge_state(
                    histogram_state
                )

    def reset(self) -> None:
        """Drop every instrument (tests call this between cases)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: every emission is discarded.

    Instrument accessors still hand out (unregistered) instruments so
    code holding a reference keeps working; the one-shot helpers are
    pure no-ops.
    """

    enabled = False

    def counter(self, name: str) -> Counter:
        return Counter(name)

    def gauge(self, name: str) -> Gauge:
        return Gauge(name)

    def histogram(self, name: str) -> Histogram:
        return Histogram(name)

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge_state(self, state: "Dict[str, Any]") -> None:
        pass


#: The process-wide default: metrics disabled.
NULL_METRICS = NullMetricsRegistry()

_CURRENT: MetricsRegistry = NULL_METRICS


def get_metrics() -> MetricsRegistry:
    """The current process-global registry (no-op unless installed)."""
    return _CURRENT


def set_metrics(registry: "Optional[MetricsRegistry]") -> MetricsRegistry:
    """Install ``registry`` globally (``None`` restores the no-op default).

    Returns the installed registry for convenience.
    """
    global _CURRENT
    _CURRENT = NULL_METRICS if registry is None else registry
    return _CURRENT


@contextmanager
def use_metrics(registry: "Optional[MetricsRegistry]") -> "Iterator[MetricsRegistry]":
    """Install a registry for the duration of a ``with`` block."""
    previous = _CURRENT
    installed = set_metrics(registry)
    try:
        yield installed
    finally:
        set_metrics(None if previous is NULL_METRICS else previous)
