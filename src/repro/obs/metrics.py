"""A process-local metrics registry: counters, gauges and histograms.

Instruments are created on first use and keyed by dotted names
(``evaluate.calls``, ``recovery.plan_ms``, ``sim.events_processed``).
The process default, :data:`NULL_METRICS`, discards every emission, so
instrumented code costs a no-op method call when metrics are off;
callers opt in with :func:`set_metrics` / :func:`use_metrics`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value; each set replaces the last."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


@dataclass
class Histogram:
    """Summary statistics of observed values (count/total/min/max)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Average of the observations (0.0 before the first)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class MetricsRegistry:
    """Holds every instrument of one process (or one test)."""

    counters: "Dict[str, Counter]" = field(default_factory=dict)
    gauges: "Dict[str, Gauge]" = field(default_factory=dict)
    histograms: "Dict[str, Histogram]" = field(default_factory=dict)

    enabled = True

    # -- instrument access (create on first use) ------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created at zero if new."""
        try:
            return self.counters[name]
        except KeyError:
            instrument = self.counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created at zero if new."""
        try:
            return self.gauges[name]
        except KeyError:
            instrument = self.gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        """The named histogram, created empty if new."""
        try:
            return self.histograms[name]
        except KeyError:
            instrument = self.histograms[name] = Histogram(name)
            return instrument

    # -- one-shot emission helpers (what the hot paths call) ------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the named counter."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation on the named histogram."""
        self.histogram(name).observe(value)

    # -- lifecycle ------------------------------------------------------------

    def snapshot(self) -> "Dict[str, Any]":
        """A JSON-friendly copy of every instrument's current state."""
        return {
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "mean": h.mean,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (tests call this between cases)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: every emission is discarded.

    Instrument accessors still hand out (unregistered) instruments so
    code holding a reference keeps working; the one-shot helpers are
    pure no-ops.
    """

    enabled = False

    def counter(self, name: str) -> Counter:
        return Counter(name)

    def gauge(self, name: str) -> Gauge:
        return Gauge(name)

    def histogram(self, name: str) -> Histogram:
        return Histogram(name)

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


#: The process-wide default: metrics disabled.
NULL_METRICS = NullMetricsRegistry()

_CURRENT: MetricsRegistry = NULL_METRICS


def get_metrics() -> MetricsRegistry:
    """The current process-global registry (no-op unless installed)."""
    return _CURRENT


def set_metrics(registry: "Optional[MetricsRegistry]") -> MetricsRegistry:
    """Install ``registry`` globally (``None`` restores the no-op default).

    Returns the installed registry for convenience.
    """
    global _CURRENT
    _CURRENT = NULL_METRICS if registry is None else registry
    return _CURRENT


@contextmanager
def use_metrics(registry: "Optional[MetricsRegistry]") -> "Iterator[MetricsRegistry]":
    """Install a registry for the duration of a ``with`` block."""
    previous = _CURRENT
    installed = set_metrics(registry)
    try:
        yield installed
    finally:
        set_metrics(None if previous is NULL_METRICS else previous)
