"""Evaluation provenance: *why* an assessment's numbers came out as they did.

Every :class:`~repro.core.results.Assessment` carries an
:class:`EvaluationProvenance` recording the decisions made along the
pipeline: which recovery source was chosen (and why planning failed, if
it did), which penalty term and which outlay dominated the cost, which
device drove system utilization, the design-validation warnings, how
the scenario's scope resolved to a recovery size, and — when tracing is
enabled — per-phase wall-clock timings.

:func:`explain_assessment` turns an assessment plus its provenance into
the human-readable explanation of the four output metrics that the CLI
prints under ``--trace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from ..units import format_duration, format_money, format_percent, format_size


@dataclass(frozen=True)
class EvaluationProvenance:
    """The decision record of one evaluation.

    All fields default, so partially populated records (e.g. loaded
    from an older serialized form) stay usable.
    """

    design_name: str = ""
    scenario: str = ""
    scenario_scope: str = ""
    recovery_target_age: float = 0.0
    #: How the scope resolved: bytes the recovery actually moves (None
    #: when no plan was built).
    recovery_size: Optional[float] = None
    validation_warnings: "Tuple[str, ...]" = ()
    #: Chosen recovery source technique, or None when unrecoverable.
    recovery_source: Optional[str] = None
    recovery_source_level: Optional[int] = None
    #: Why no recovery plan exists (RecoveryError text or total loss).
    recovery_failure: Optional[str] = None
    total_loss: bool = False
    #: "bandwidth of <device>" / "capacity of <device>".
    utilization_driver: Optional[str] = None
    #: The technique with the largest annualized outlay.
    dominant_outlay: Optional[str] = None
    #: "outage" / "loss" / None — the larger penalty term.
    dominant_penalty: Optional[str] = None
    #: Wall-clock milliseconds per pipeline phase (tracing only).
    phase_ms: "Mapping[str, float]" = field(default_factory=dict)
    #: Free-form decision log, in pipeline order.
    decisions: "Tuple[str, ...]" = ()

    def to_dict(self) -> "Dict[str, Any]":
        """A JSON-friendly dictionary (tuples become lists)."""
        return {
            "design_name": self.design_name,
            "scenario": self.scenario,
            "scenario_scope": self.scenario_scope,
            "recovery_target_age": self.recovery_target_age,
            "recovery_size": self.recovery_size,
            "validation_warnings": list(self.validation_warnings),
            "recovery_source": self.recovery_source,
            "recovery_source_level": self.recovery_source_level,
            "recovery_failure": self.recovery_failure,
            "total_loss": self.total_loss,
            "utilization_driver": self.utilization_driver,
            "dominant_outlay": self.dominant_outlay,
            "dominant_penalty": self.dominant_penalty,
            "phase_ms": dict(self.phase_ms),
            "decisions": list(self.decisions),
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "EvaluationProvenance":
        """Rebuild a record, ignoring unknown keys.

        Forward-compatible on purpose: records written by a newer
        version load cleanly, keeping only the fields this version
        knows about (unlike spec parsing, where typos must raise).
        """
        known = {f.name for f in fields(cls)}
        kwargs: "Dict[str, Any]" = {k: v for k, v in data.items() if k in known}
        for key in ("validation_warnings", "decisions"):
            if key in kwargs and kwargs[key] is not None:
                kwargs[key] = tuple(kwargs[key])
        if kwargs.get("phase_ms") is not None:
            kwargs["phase_ms"] = dict(kwargs.get("phase_ms") or {})
        return cls(**kwargs)

    def describe(self) -> str:
        """The decision log as one readable block."""
        lines = [f"{self.design_name} / {self.scenario}:"]
        for decision in self.decisions:
            lines.append(f"  - {decision}")
        if self.phase_ms:
            timing = ", ".join(
                f"{phase} {ms:.2f} ms" for phase, ms in self.phase_ms.items()
            )
            lines.append(f"  - phase timings: {timing}")
        return "\n".join(lines)


def _explain_utilization(assessment, provenance) -> str:
    utilization = assessment.utilization
    driver = provenance.utilization_driver if provenance else None
    if driver is None:
        if utilization.max_bandwidth_utilization >= utilization.max_capacity_utilization:
            driver = f"bandwidth of {utilization.max_bandwidth_device}"
        else:
            driver = f"capacity of {utilization.max_capacity_device}"
    return (
        f"utilization = {format_percent(assessment.system_utilization)}: "
        f"set by the {driver} "
        f"(bw max {format_percent(utilization.max_bandwidth_utilization)} on "
        f"{utilization.max_bandwidth_device}, cap max "
        f"{format_percent(utilization.max_capacity_utilization)} on "
        f"{utilization.max_capacity_device})"
    )


def _explain_recovery_time(assessment, provenance) -> str:
    plan = assessment.recovery
    if plan is None:
        reason = provenance.recovery_failure if provenance else None
        return (
            "recovery time = unbounded: no recovery plan"
            + (f" ({reason})" if reason else "")
        )
    parts = [
        f"recovery time = {format_duration(plan.recovery_time)}: "
        f"restore {format_size(plan.recovery_size)} from "
        f"{plan.source_name} (level {plan.source_level_index}) in "
        f"{len(plan.steps)} steps"
    ]
    if plan.steps and plan.recovery_time > 0:
        longest = max(plan.steps, key=lambda step: step.duration)
        share = longest.duration / plan.recovery_time
        parts.append(
            f"; longest step: {longest.label} "
            f"({format_duration(longest.duration)}, {format_percent(share)} of RT)"
        )
    return "".join(parts)


def _explain_data_loss(assessment, provenance) -> str:
    loss = assessment.data_loss
    if loss.total_loss:
        return (
            "data loss = total: no surviving level retains an RP usable "
            f"for a recovery target {format_duration(loss.target_age)} old"
        )
    # The index survives serialization even when the live Level doesn't,
    # so cache-restored assessments explain identically.
    source_index = getattr(loss, "source_index", None)
    if source_index is None and loss.source_level is not None:
        source_index = loss.source_level.index
    detail = ""
    if source_index is not None:
        for rng in loss.ranges:
            if rng.level_index == source_index:
                detail = (
                    f"; its guaranteed RPs span ages "
                    f"{format_duration(rng.newest_age)} to "
                    f"{format_duration(rng.oldest_age)}"
                )
                break
    return (
        f"data loss = {format_duration(loss.data_loss)}: recovered from "
        f"{loss.source_name}"
        + (f" (level {source_index})" if source_index is not None else "")
        + detail
    )


def _explain_cost(assessment, provenance) -> str:
    costs = assessment.costs
    dominant_outlay = provenance.dominant_outlay if provenance else None
    if dominant_outlay is None and costs.outlays_by_technique:
        dominant_outlay = max(
            costs.outlays_by_technique, key=costs.outlays_by_technique.get
        )
    parts = [
        f"cost = {format_money(costs.total_cost)}: outlays "
        f"{format_money(costs.total_outlays)}"
    ]
    if dominant_outlay is not None:
        parts.append(
            f" (dominated by {dominant_outlay} at "
            f"{format_money(costs.outlays_by_technique.get(dominant_outlay, 0.0))})"
        )
    parts.append(f" + penalties {format_money(costs.total_penalties)}")
    if costs.total_penalties > 0:
        dominant = (
            "recent-data-loss"
            if costs.loss_penalty > costs.outage_penalty
            else "outage"
        )
        parts.append(f" (dominated by the {dominant} penalty)")
    return "".join(parts)


def explain_assessment(assessment) -> str:
    """Explain the four output metrics of one assessment.

    Uses the attached provenance when present and falls back to the
    assessment's own sub-results, so pre-provenance assessments (e.g.
    deserialized ones) still get a best-effort explanation.
    """
    provenance = getattr(assessment, "provenance", None)
    lines = [
        _explain_utilization(assessment, provenance),
        _explain_recovery_time(assessment, provenance),
        _explain_data_loss(assessment, provenance),
        _explain_cost(assessment, provenance),
    ]
    if provenance is not None and provenance.validation_warnings:
        lines.append(
            f"validation warnings ({len(provenance.validation_warnings)}): "
            + "; ".join(provenance.validation_warnings)
        )
    return "\n".join(lines)
