"""Trade-off analysis over evaluated designs.

Two views on a set of :class:`~repro.design.whatif.WhatIfResult`:

* :func:`pareto_frontier` — the designs not dominated on the three axes
  a storage architect actually trades (worst-case recovery time,
  worst-case recent data loss, annual outlays).  Everything off the
  frontier is strictly worse than some frontier design on every axis;
* :func:`dominated_by` — for a given design, which frontier designs
  dominate it (the "what should I buy instead" answer).

Domination uses the standard weak-Pareto definition: ``a`` dominates
``b`` when ``a`` is no worse on every axis and strictly better on at
least one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..exceptions import DesignError
from .whatif import WhatIfResult


@dataclass(frozen=True)
class TradeoffPoint:
    """One design's position in the (RT, DL, outlays) trade space."""

    result: WhatIfResult

    @property
    def axes(self) -> "Tuple[float, float, float]":
        """(worst recovery time, worst data loss, annual outlays)."""
        return (
            self.result.worst_recovery_time,
            self.result.worst_data_loss,
            self.result.total_outlays,
        )

    def dominates(self, other: "TradeoffPoint") -> bool:
        """No worse everywhere, strictly better somewhere."""
        mine, theirs = self.axes, other.axes
        return all(a <= b for a, b in zip(mine, theirs)) and any(
            a < b for a, b in zip(mine, theirs)
        )


def pareto_frontier(results: Sequence[WhatIfResult]) -> "List[WhatIfResult]":
    """The non-dominated designs, in input order.

    Ties (identical axes) all stay on the frontier.
    """
    if not results:
        raise DesignError("pareto frontier needs at least one result")
    points = [TradeoffPoint(result) for result in results]
    frontier: "List[WhatIfResult]" = []
    for candidate in points:
        if not any(
            other is not candidate and other.dominates(candidate)
            for other in points
        ):
            frontier.append(candidate.result)
    return frontier


def dominated_by(
    result: WhatIfResult, results: Sequence[WhatIfResult]
) -> "List[WhatIfResult]":
    """The designs that dominate the given one (empty if on the frontier)."""
    mine = TradeoffPoint(result)
    return [
        other
        for other in results
        if other is not result and TradeoffPoint(other).dominates(mine)
    ]
