"""Failure-frequency weighting (paper section 5).

The base framework deliberately evaluates a *hypothesized* failure
regardless of how often it happens.  The paper's conclusion notes that
its automated-design outer loop "allows us to incorporate failure
frequencies and prioritizations, thus permitting the concurrent
consideration of multiple failures".  This module adds that weighting:

* :class:`FailureFrequencies` — per-scenario annual event rates;
* :func:`expected_annual_cost` — annual outlays plus the
  frequency-weighted expected penalties over all scenarios;
* :func:`optimize_expected` — rank candidate designs by expected annual
  cost instead of single-scenario worst case.

Typical rates (events/year): disk array ~0.1–1, site disaster ~0.001–
0.01, operator error corrupting an object ~1–10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from ..core.hierarchy import StorageDesign
from ..exceptions import DesignError, OptimizationError, ReproError
from ..scenarios.failures import FailureScenario
from ..scenarios.requirements import BusinessRequirements
from ..units import YEAR
from ..workload.spec import Workload
from .whatif import run_whatif


@dataclass(frozen=True)
class FailureFrequencies:
    """Annual event rates per failure scenario (by list position)."""

    scenarios: Tuple[FailureScenario, ...]
    rates_per_year: Tuple[float, ...]

    def __init__(
        self,
        entries: Sequence[Tuple[FailureScenario, float]],
    ):
        if not entries:
            raise DesignError("at least one (scenario, rate) entry required")
        scenarios = []
        rates = []
        for scenario, rate in entries:
            if rate < 0:
                raise DesignError(f"event rate must be >= 0, got {rate}")
            scenarios.append(scenario)
            rates.append(float(rate))
        object.__setattr__(self, "scenarios", tuple(scenarios))
        object.__setattr__(self, "rates_per_year", tuple(rates))

    def __len__(self) -> int:
        return len(self.scenarios)

    def items(self) -> "List[Tuple[FailureScenario, float]]":
        """(scenario, annual rate) pairs in declaration order."""
        return list(zip(self.scenarios, self.rates_per_year))


@dataclass(frozen=True)
class ExpectedCost:
    """Annualized expected cost decomposition for one design."""

    design_name: str
    annual_outlays: float
    expected_annual_penalties: float
    penalty_by_scenario: "Dict[str, float]"

    @property
    def expected_annual_cost(self) -> float:
        """Annual outlays plus frequency-weighted expected penalties."""
        return self.annual_outlays + self.expected_annual_penalties


def expected_annual_cost(
    design_factory: Callable[[], StorageDesign],
    workload: Workload,
    frequencies: FailureFrequencies,
    requirements: BusinessRequirements,
    design_name: str = None,
) -> ExpectedCost:
    """Annual outlays plus frequency-weighted expected penalties.

    Each scenario's per-event penalty (outage + loss) is multiplied by
    its annual rate; a scenario the design cannot survive (total loss)
    contributes an infinite expected penalty unless its rate is zero.
    """
    name = design_name or design_factory().name
    results = run_whatif(
        {name: design_factory}, workload, list(frequencies.scenarios), requirements
    )
    result = results[0]
    penalty_by_scenario: "Dict[str, float]" = {}
    expected_penalties = 0.0
    for (scenario, rate), (label, assessment) in zip(
        frequencies.items(), result.assessments.items()
    ):
        per_event = assessment.costs.total_penalties
        if per_event == float("inf") and rate == 0.0:
            weighted = 0.0
        else:
            weighted = rate * per_event
        penalty_by_scenario[label] = weighted
        expected_penalties += weighted
    return ExpectedCost(
        design_name=name,
        annual_outlays=result.total_outlays,
        expected_annual_penalties=expected_penalties,
        penalty_by_scenario=penalty_by_scenario,
    )


@dataclass(frozen=True)
class AvailabilitySummary:
    """Expected annual downtime and the resulting availability."""

    design_name: str
    expected_annual_downtime: float  # seconds per year
    downtime_by_scenario: "Dict[str, float]"

    YEAR_SECONDS = YEAR

    @property
    def availability(self) -> float:
        """Fraction of the year the data is expected to be accessible."""
        return max(0.0, 1.0 - self.expected_annual_downtime / self.YEAR_SECONDS)

    @property
    def nines(self) -> float:
        """The availability expressed as a count of nines (3.0 = 99.9%)."""
        import math

        unavailability = 1.0 - self.availability
        if unavailability <= 0:
            return float("inf")
        return -math.log10(unavailability)


def expected_availability(
    design_factory: Callable[[], StorageDesign],
    workload: Workload,
    frequencies: FailureFrequencies,
    requirements: BusinessRequirements,
    design_name: str = None,
) -> AvailabilitySummary:
    """Frequency-weighted expected downtime and availability.

    Each scenario contributes ``rate * recovery_time`` seconds of
    expected annual downtime; unsurvivable scenarios with a nonzero rate
    make the downtime unbounded.
    """
    name = design_name or design_factory().name
    results = run_whatif(
        {name: design_factory}, workload, list(frequencies.scenarios), requirements
    )
    result = results[0]
    downtime_by_scenario: "Dict[str, float]" = {}
    total = 0.0
    for (scenario, rate), (label, assessment) in zip(
        frequencies.items(), result.assessments.items()
    ):
        recovery_time = assessment.recovery_time
        if recovery_time == float("inf") and rate == 0.0:
            weighted = 0.0
        else:
            weighted = rate * recovery_time
        downtime_by_scenario[label] = weighted
        total += weighted
    return AvailabilitySummary(
        design_name=name,
        expected_annual_downtime=total,
        downtime_by_scenario=downtime_by_scenario,
    )


def optimize_expected(
    candidates: "Mapping[str, Callable[[], StorageDesign]]",
    workload: Workload,
    frequencies: FailureFrequencies,
    requirements: BusinessRequirements,
) -> "List[ExpectedCost]":
    """Rank candidates by expected annual cost, cheapest first.

    Candidates that fail to evaluate are dropped; an empty result is an
    :class:`~repro.exceptions.OptimizationError`.
    """
    ranked: "List[ExpectedCost]" = []
    failures: "List[str]" = []
    for name, factory in candidates.items():
        try:
            ranked.append(
                expected_annual_cost(
                    factory, workload, frequencies, requirements, design_name=name
                )
            )
        except ReproError as exc:
            failures.append(f"{name}: {exc}")
    if not ranked:
        raise OptimizationError(
            "no candidate could be evaluated: " + "; ".join(failures)
        )
    ranked.sort(key=lambda entry: entry.expected_annual_cost)
    return ranked
