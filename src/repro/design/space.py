"""Candidate design enumeration from parameter grids.

A :class:`DesignSpace` is a small grammar over the case-study's design
family: choose a point-in-time flavor (split mirror / snapshot / none),
a backup policy (cadences with or without incrementals / none), a
vaulting cadence (or none), and optionally a batched-async mirror with
a link count.  :func:`candidate_designs` expands the cross product into
named design factories, pruning combinations that violate the
structural conventions (backup requires a PiT image to read from;
vaulting requires backup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.hierarchy import StorageDesign
from ..devices.catalog import (
    air_shipment,
    enterprise_tape_library,
    midrange_disk_array,
    oc3_links,
    offsite_vault,
    san_link,
)
from ..devices.spares import SpareConfig
from ..exceptions import DesignError
from ..scenarios.locations import REMOTE_SITE
from ..techniques.backup import Backup, IncrementalPolicy
from ..techniques.mirroring import BatchedAsyncMirror
from ..techniques.primary import PrimaryCopy
from ..techniques.snapshot import VirtualSnapshot
from ..techniques.split_mirror import SplitMirror
from ..techniques.vaulting import RemoteVaulting
from ..units import parse_duration


@dataclass(frozen=True)
class PitChoice:
    """A point-in-time flavor: kind, window, retention."""

    kind: str  # "split-mirror" | "snapshot" | "none"
    accumulation_window: str = "12 hr"
    retention_count: int = 4

    def build(self):
        if self.kind == "split-mirror":
            return SplitMirror(self.accumulation_window, self.retention_count)
        if self.kind == "snapshot":
            return VirtualSnapshot(self.accumulation_window, self.retention_count)
        if self.kind == "none":
            return None
        raise DesignError(f"unknown PiT kind {self.kind!r}")

    @property
    def label(self) -> str:
        return self.kind if self.kind != "none" else "no-pit"


@dataclass(frozen=True)
class BackupChoice:
    """A backup cadence; ``None`` fields follow the baseline."""

    label: str
    full_accumulation_window: str
    full_propagation_window: str
    full_hold_window: str = "1 hr"
    retention_count: int = 4
    incremental: Optional[IncrementalPolicy] = None

    def build(self) -> Backup:
        return Backup(
            full_accumulation_window=self.full_accumulation_window,
            full_propagation_window=self.full_propagation_window,
            full_hold_window=self.full_hold_window,
            retention_count=self.retention_count,
            incremental=self.incremental,
        )


@dataclass(frozen=True)
class VaultChoice:
    """A vaulting cadence."""

    label: str
    accumulation_window: str
    hold_window: str
    retention_count: int

    def build(self) -> RemoteVaulting:
        return RemoteVaulting(
            accumulation_window=self.accumulation_window,
            propagation_window="24 hr",
            hold_window=self.hold_window,
            retention_count=self.retention_count,
        )


@dataclass(frozen=True)
class DesignSpace:
    """Grids over the case-study design family.

    Any axis may be empty-augmented with ``None`` entries (e.g. "no
    vaulting"); mirrors are an independent axis added on top of (or
    instead of) the tape hierarchy.
    """

    pit_choices: Tuple[PitChoice, ...] = (
        PitChoice("split-mirror"),
        PitChoice("snapshot"),
    )
    backup_choices: Tuple[Optional[BackupChoice], ...] = (
        BackupChoice("weekly-full", "1 wk", "48 hr"),
        BackupChoice("daily-full", "24 hr", "12 hr"),
        None,
    )
    vault_choices: Tuple[Optional[VaultChoice], ...] = (
        VaultChoice("4wk-vault", "4 wk", "676 hr", 39),
        VaultChoice("weekly-vault", "1 wk", "12 hr", 156),
        None,
    )
    mirror_link_counts: Tuple[Optional[int], ...] = (None, 1, 10)

    def size_upper_bound(self) -> int:
        """Cross-product size before structural pruning."""
        return (
            len(self.pit_choices)
            * len(self.backup_choices)
            * len(self.vault_choices)
            * len(self.mirror_link_counts)
        )


def _build_design(
    name: str,
    pit: PitChoice,
    backup: Optional[BackupChoice],
    vault: Optional[VaultChoice],
    links: Optional[int],
) -> StorageDesign:
    """Assemble one candidate on fresh catalog hardware.

    When both a mirror and a tape track are present, the mirror branches
    directly off the primary copy (``feeds_from=0``) while the tape
    track hangs off the PiT level — the hybrid topology that branching
    hierarchies make expressible.
    """
    array = midrange_disk_array(spare=SpareConfig.dedicated("60 s", 1.0))
    design = StorageDesign(name, recovery_facility=SpareConfig.shared("9 hr", 0.2))
    design.add_level(PrimaryCopy(), store=array)
    pit_technique = pit.build()
    pit_index: Optional[int] = None
    if pit_technique is not None:
        pit_index = design.add_level(pit_technique, store=array).index
    if links is not None:
        design.add_level(
            BatchedAsyncMirror("1 min"),
            store=midrange_disk_array(
                name="mirror-array", location=REMOTE_SITE, spare=SpareConfig.none()
            ),
            transport=oc3_links(links),
            feeds_from=0,
        )
    backup_index: Optional[int] = None
    if backup is not None:
        backup_index = design.add_level(
            backup.build(),
            store=enterprise_tape_library(spare=SpareConfig.dedicated("60 s", 1.0)),
            transport=san_link(),
            feeds_from=pit_index,
        ).index
    if vault is not None:
        design.add_level(
            vault.build(),
            store=offsite_vault(),
            transport=air_shipment(),
            feeds_from=backup_index,
        )
    return design


def _structurally_valid(
    pit: PitChoice,
    backup: Optional[BackupChoice],
    vault: Optional[VaultChoice],
) -> bool:
    """Prune combinations the conventions forbid or that protect nothing."""
    if vault is not None and backup is None:
        return False  # vaulting ships backup media
    if backup is not None and pit.kind == "none":
        return False  # backup reads a consistent PiT image
    if backup is None and pit.kind == "none":
        return False  # no protection at all
    if pit.kind != "none" and backup is not None:
        pit_window = parse_duration(pit.accumulation_window)
        backup_window = parse_duration(backup.full_accumulation_window)
        if backup_window < pit_window:
            return False  # accW_{i+1} >= cyclePer_i convention
    return True


def candidate_designs(
    space: DesignSpace,
    include_hybrids: bool = False,
) -> "Dict[str, Callable[[], StorageDesign]]":
    """Expand the space into ``{name: factory}``, structurally pruned.

    By default the tape track (PiT + backup + vault) and the mirror
    track are separate families, as in the case study.
    ``include_hybrids=True`` additionally crosses the mirror axis into
    the tape track as a *branch* off the primary copy (legal under the
    section 3.2.1 conventions because the conventions apply per feeding
    chain, not per level number) — the designs that satisfy a
    minutes-level RPO *and* historical rollback at once.
    """
    factories: "Dict[str, Callable[[], StorageDesign]]" = {}
    link_options: "Tuple[Optional[int], ...]" = (
        space.mirror_link_counts if include_hybrids else (None,)
    )
    for pit in space.pit_choices:
        for backup in space.backup_choices:
            for vault in space.vault_choices:
                if not _structurally_valid(pit, backup, vault):
                    continue
                for links in link_options:
                    parts: "List[str]" = [pit.label]
                    if links is not None:
                        parts.append(f"asyncB-{links}link")
                    if backup is not None:
                        parts.append(backup.label)
                    if vault is not None:
                        parts.append(vault.label)
                    name = " + ".join(parts)

                    def tape_factory(
                        pit=pit, backup=backup, vault=vault, links=links,
                        name=name,
                    ) -> StorageDesign:
                        return _build_design(name, pit, backup, vault, links)

                    factories[name] = tape_factory
    for links in space.mirror_link_counts:
        if links is None:
            continue
        name = f"asyncB-{links}link"

        def mirror_factory(links=links, name=name) -> StorageDesign:
            return _build_design(
                name, PitChoice("none"), backup=None, vault=None, links=links
            )

        factories[name] = mirror_factory
    return factories
