"""Single-parameter sensitivity sweeps (ablation studies).

Each sweep varies one design knob while holding the rest of the
baseline family fixed, recording the four output metrics at every
point.  These back the ablation benches called out in DESIGN.md:

* :func:`sweep_accumulation_window` — how the PiT/mirror batching
  window trades recent data loss against device load and link demand;
* :func:`sweep_link_count` — how WAN provisioning trades recovery time
  against outlays (Table 7's 1-vs-10-link contrast, generalized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from .. import casestudy
from ..core.hierarchy import StorageDesign
from ..core.results import Assessment
from ..engine import EngineConfig
from ..engine.sweep import evaluate_design_map
from ..obs import get_metrics, get_tracer
from ..scenarios.failures import FailureScenario
from ..scenarios.requirements import BusinessRequirements
from ..units import parse_duration
from ..workload.spec import Workload


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the knob value and the four output metrics."""

    parameter: float
    system_utilization: float
    recovery_time: float
    recent_data_loss: float
    total_cost: float


def _as_point(parameter: float, assessment: Assessment) -> SweepPoint:
    return SweepPoint(
        parameter=parameter,
        system_utilization=assessment.system_utilization,
        recovery_time=assessment.recovery_time,
        recent_data_loss=assessment.recent_data_loss,
        total_cost=assessment.total_cost,
    )


def _sweep(
    samples: "Sequence[Tuple[float, StorageDesign]]",
    workload: Workload,
    scenario: FailureScenario,
    requirements: BusinessRequirements,
    config: "Optional[EngineConfig]",
) -> "List[SweepPoint]":
    """Run ``(parameter, design)`` samples through the engine, in order."""
    metrics = get_metrics()
    with get_tracer().span("sensitivity.sweep", points=len(samples)):
        metrics.inc("sensitivity.points", len(samples))
        designs = {
            f"{index}:{design.name}": design
            for index, (_, design) in enumerate(samples)
        }
        outcomes = evaluate_design_map(
            designs, workload, [scenario], requirements, config=config,
            label="sensitivity",
        )
        points: "List[SweepPoint]" = []
        for (parameter, _), outcome in zip(samples, outcomes.values()):
            if outcome.error is not None:
                raise outcome.error
            assessment = next(iter(outcome.value.values()))
            points.append(_as_point(parameter, assessment))
        return points


def sweep_accumulation_window(
    windows: Sequence[Union[str, float]],
    workload: Workload,
    scenario: FailureScenario,
    requirements: BusinessRequirements,
    design_factory: Callable[[Union[str, float]], StorageDesign] = None,
    config: Optional[EngineConfig] = None,
) -> "List[SweepPoint]":
    """Sweep a batched-async mirror's accumulation window.

    The default family is the case study's single-link asyncB design
    with the batch window replaced; pass ``design_factory`` to sweep a
    different family (it receives the window and returns a design).
    """
    if design_factory is None:
        def design_factory(window):
            from ..devices.catalog import midrange_disk_array, oc3_links
            from ..devices.spares import SpareConfig
            from ..scenarios.locations import REMOTE_SITE
            from ..techniques.mirroring import BatchedAsyncMirror
            from ..techniques.primary import PrimaryCopy

            design = StorageDesign(
                f"asyncB accW={window}",
                recovery_facility=casestudy.recovery_facility(),
            )
            design.add_level(
                PrimaryCopy(), store=midrange_disk_array(spare=casestudy.hot_spare())
            )
            design.add_level(
                BatchedAsyncMirror(accumulation_window=window),
                store=midrange_disk_array(
                    name="mirror-array",
                    location=REMOTE_SITE,
                    spare=SpareConfig.none(),
                ),
                transport=oc3_links(1),
            )
            return design

    samples = [
        (parse_duration(window), design_factory(window)) for window in windows
    ]
    return _sweep(samples, workload, scenario, requirements, config)


def sweep_link_count(
    link_counts: Sequence[int],
    workload: Workload,
    scenario: FailureScenario,
    requirements: BusinessRequirements,
    config: Optional[EngineConfig] = None,
) -> "List[SweepPoint]":
    """Sweep the WAN link provisioning of the asyncB mirror design."""
    samples = [
        (float(count), casestudy.async_batch_mirror_design(count))
        for count in link_counts
    ]
    return _sweep(samples, workload, scenario, requirements, config)
