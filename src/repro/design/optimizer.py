"""Cost-driven design selection under RTO/RPO constraints.

The optimizer evaluates every candidate against every scenario and
ranks by **worst-case total cost** (annual outlays plus the most
expensive scenario's penalties).  Candidates violating a declared RTO
or RPO under *any* scenario are infeasible; when nothing is feasible
the outcome says so rather than guessing (callers may fall back to the
cheapest infeasible candidate explicitly).

Candidates that fail structural validation or over-commit their devices
are skipped and reported, not silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.hierarchy import StorageDesign
from ..engine import EngineConfig, ResultCache
from ..engine.sweep import evaluate_design_map
from ..exceptions import OptimizationError
from ..obs import get_metrics, get_tracer
from ..scenarios.failures import FailureScenario
from ..scenarios.requirements import BusinessRequirements
from ..workload.spec import Workload
from .whatif import WhatIfResult


@dataclass(frozen=True)
class RankedDesign:
    """One candidate's ranking entry."""

    result: WhatIfResult
    feasible: bool

    @property
    def name(self) -> str:
        """The candidate design's display name."""
        return self.result.design_name

    @property
    def objective(self) -> float:
        """The ranking objective: worst-case total cost."""
        return self.result.worst_total_cost


@dataclass(frozen=True)
class OptimizationOutcome:
    """The optimizer's full output: winner, ranking, and skip reasons."""

    best: Optional[RankedDesign]
    ranking: Tuple[RankedDesign, ...]
    skipped: "Dict[str, str]"

    @property
    def feasible_count(self) -> int:
        """How many candidates satisfied the RTO/RPO everywhere."""
        return sum(1 for entry in self.ranking if entry.feasible)

    def summary(self) -> str:
        """Human-readable outcome for logs and the CLI."""
        lines = [
            f"evaluated {len(self.ranking)} candidates "
            f"({self.feasible_count} feasible, {len(self.skipped)} skipped)"
        ]
        if self.best is not None:
            lines.append(
                f"best: {self.best.name} at ${self.best.objective:,.0f} "
                "worst-case total"
            )
        else:
            lines.append("no feasible design meets the declared objectives")
        return "\n".join(lines)


def optimize(
    candidates: "Mapping[str, Callable[[], StorageDesign]]",
    workload: Workload,
    scenarios: Sequence[FailureScenario],
    requirements: BusinessRequirements,
    config: Optional[EngineConfig] = None,
    cache: Optional[ResultCache] = None,
) -> OptimizationOutcome:
    """Rank candidates by worst-case total cost; pick the best feasible.

    Candidates are evaluated through :mod:`repro.engine` — pass a
    ``config`` with ``workers > 1`` or a cache directory to parallelize
    or cache the sweep; the ranking is identical either way.  A
    candidate that cannot be evaluated (a modeling error, a worker
    crash after retries, a timeout) lands in ``skipped`` with the error
    text.  Equal-cost candidates rank alphabetically, so the winner is
    deterministic regardless of mapping order.

    Raises :class:`~repro.exceptions.OptimizationError` only when *no*
    candidate could even be evaluated.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    evaluated: "List[RankedDesign]" = []
    skipped: "Dict[str, str]" = {}
    with tracer.span("optimizer.optimize", candidates=len(candidates)) as span:
        metrics.inc("optimizer.candidates", len(candidates))
        outcomes = evaluate_design_map(
            candidates, workload, scenarios, requirements,
            config=config, cache=cache, label="optimize",
        )
        for name, outcome in outcomes.items():
            if outcome.error is not None:
                metrics.inc("optimizer.designs_pruned")
                skipped[name] = str(outcome.error)
                continue
            result = WhatIfResult(design_name=name, assessments=outcome.value)
            evaluated.append(
                RankedDesign(result=result, feasible=result.meets_objectives)
            )
        if not evaluated:
            raise OptimizationError(
                "no candidate design could be evaluated: "
                + "; ".join(f"{k}: {v}" for k, v in skipped.items())
            )
        # Tie-break on the name: equal-cost candidates used to keep
        # mapping order, which made the winner depend on insertion
        # order of the candidate dict.
        ranking = tuple(
            sorted(evaluated, key=lambda entry: (entry.objective, entry.name))
        )
        feasible = [entry for entry in ranking if entry.feasible]
        metrics.inc("optimizer.feasible", len(feasible))
        span.set(evaluated=len(evaluated), pruned=len(skipped), feasible=len(feasible))
        return OptimizationOutcome(
            best=feasible[0] if feasible else None,
            ranking=ranking,
            skipped=skipped,
        )
