"""Workload headroom: how much growth a design can absorb.

A design that is feasible today may over-commit as the workload grows.
:func:`max_supported_scale` binary-searches the largest uniform workload
scale factor (rates and batch curve together; the dataset size is
scaled separately via :func:`max_supported_capacity`) at which every
device stays within its bandwidth envelope, and
:func:`max_supported_capacity` does the same for dataset growth against
capacity envelopes.  Both answer the capacity-planning questions the
normal-mode utilization model (§3.3.1) makes precise.
"""

from __future__ import annotations

from typing import Callable

from ..core.demands import register_design_demands
from ..core.hierarchy import StorageDesign
from ..core.utilization import compute_utilization
from ..exceptions import DesignError
from ..workload.spec import Workload


def _feasible_at(
    design: StorageDesign,
    workload: Workload,
    bandwidth_only: bool,
) -> bool:
    register_design_demands(design, workload)
    utilization = compute_utilization(design, strict=False)
    if bandwidth_only:
        return utilization.max_bandwidth_utilization <= 1.0
    return utilization.feasible


def _binary_search_scale(
    predicate: Callable[[float], bool],
    upper_start: float = 2.0,
    tolerance: float = 1e-3,
    max_upper: float = 1e9,
) -> float:
    """Largest x with predicate(x) true, assuming monotone predicate."""
    if not predicate(1.0):
        raise DesignError("design is infeasible at the current workload")
    lo, hi = 1.0, upper_start
    while predicate(hi):
        lo = hi
        hi *= 2.0
        if hi > max_upper:
            return float("inf")
    while (hi - lo) / lo > tolerance:
        mid = (lo + hi) / 2.0
        if predicate(mid):
            lo = mid
        else:
            hi = mid
    return lo


def max_supported_scale(
    design: StorageDesign,
    workload: Workload,
    tolerance: float = 1e-3,
) -> float:
    """Largest uniform rate-scale factor the design's bandwidth absorbs.

    Scaling multiplies the access/update rates and the batch curve;
    the dataset size is held fixed (see
    :func:`max_supported_capacity` for growth in bytes).  Returns
    ``inf`` when no device's bandwidth ever binds.  The design's demand
    ledgers are left registered at the *original* workload.
    """
    try:
        result = _binary_search_scale(
            lambda x: _feasible_at(design, workload.scaled(x), bandwidth_only=True),
            tolerance=tolerance,
        )
    finally:
        register_design_demands(design, workload)
    return result


def max_supported_capacity(
    design: StorageDesign,
    workload: Workload,
    tolerance: float = 1e-3,
) -> float:
    """Largest dataset-growth factor the design's capacity absorbs.

    Growth multiplies the dataset size; rates are held fixed.  Note
    that growing the dataset also grows full-backup bandwidth needs, so
    the check covers both envelopes.  Returns the growth factor (1.0 =
    no headroom).
    """
    def predicate(x: float) -> bool:
        grown = workload.with_capacity(workload.data_capacity * x)
        return _feasible_at(design, grown, bandwidth_only=False)

    try:
        result = _binary_search_scale(predicate, tolerance=tolerance)
    finally:
        register_design_demands(design, workload)
    return result
