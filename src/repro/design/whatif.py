"""What-if exploration: many designs x many failure scenarios.

This is the engine behind the paper's Table 7: evaluate every candidate
design against every scenario, collect the per-cell assessments, and
expose convenient worst-case/aggregate views for ranking.

Evaluation runs through :mod:`repro.engine`, so a what-if grid can be
parallelized and cached by passing an
:class:`~repro.engine.EngineConfig`; the default config is serial and
uncached, producing bit-identical results to evaluating each design in
a loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..core.hierarchy import StorageDesign
from ..core.results import Assessment
from ..engine import EngineConfig, ResultCache
from ..engine.sweep import evaluate_design_map
from ..scenarios.failures import FailureScenario
from ..scenarios.requirements import BusinessRequirements
from ..workload.spec import Workload

#: Designs are passed as factories so each evaluation gets fresh device
#: instances (demand ledgers are stateful).
DesignFactory = Callable[[], StorageDesign]


@dataclass(frozen=True)
class WhatIfResult:
    """One design's assessments across all evaluated scenarios."""

    design_name: str
    assessments: "Dict[str, Assessment]"

    @property
    def total_outlays(self) -> float:
        """Annual outlays (identical across scenarios of one design)."""
        first = next(iter(self.assessments.values()))
        return first.costs.total_outlays

    @property
    def worst_recovery_time(self) -> float:
        """The slowest recovery across the evaluated scenarios."""
        return max(a.recovery_time for a in self.assessments.values())

    @property
    def worst_data_loss(self) -> float:
        """The largest recent data loss across the evaluated scenarios."""
        return max(a.recent_data_loss for a in self.assessments.values())

    @property
    def worst_total_cost(self) -> float:
        """The most expensive scenario's total cost — the ranking metric."""
        return max(a.total_cost for a in self.assessments.values())

    @property
    def meets_objectives(self) -> bool:
        """RTO/RPO satisfied under every evaluated scenario."""
        return all(a.meets_objectives for a in self.assessments.values())

    def scenario(self, label_fragment: str) -> Assessment:
        """The assessment whose scenario label contains the fragment."""
        for label, assessment in self.assessments.items():
            if label_fragment in label:
                return assessment
        raise KeyError(label_fragment)


def run_whatif(
    designs: "Mapping[str, DesignFactory]",
    workload: Workload,
    scenarios: Sequence[FailureScenario],
    requirements: BusinessRequirements,
    config: Optional[EngineConfig] = None,
    cache: Optional[ResultCache] = None,
) -> "List[WhatIfResult]":
    """Evaluate every design against every scenario (Table 7's grid).

    ``designs`` maps display names to zero-argument factories.  Results
    preserve input order.  A design that cannot be evaluated raises its
    underlying :class:`~repro.exceptions.ReproError` (first failure in
    input order), matching the historical serial behavior; callers that
    want per-design failure reporting use the optimizer or
    :func:`repro.engine.sweep.evaluate_design_map` directly.
    """
    outcomes = evaluate_design_map(
        designs, workload, scenarios, requirements, config=config, cache=cache,
        label="whatif",
    )
    results: "List[WhatIfResult]" = []
    for name, outcome in outcomes.items():
        if outcome.error is not None:
            raise outcome.error
        results.append(
            WhatIfResult(design_name=name, assessments=outcome.value)
        )
    return results
