"""What-if exploration: many designs x many failure scenarios.

This is the engine behind the paper's Table 7: evaluate every candidate
design against every scenario, collect the per-cell assessments, and
expose convenient worst-case/aggregate views for ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence

from ..core.evaluate import evaluate_scenarios
from ..core.hierarchy import StorageDesign
from ..core.results import Assessment
from ..scenarios.failures import FailureScenario
from ..scenarios.requirements import BusinessRequirements
from ..workload.spec import Workload

#: Designs are passed as factories so each evaluation gets fresh device
#: instances (demand ledgers are stateful).
DesignFactory = Callable[[], StorageDesign]


@dataclass(frozen=True)
class WhatIfResult:
    """One design's assessments across all evaluated scenarios."""

    design_name: str
    assessments: "Dict[str, Assessment]"

    @property
    def total_outlays(self) -> float:
        """Annual outlays (identical across scenarios of one design)."""
        first = next(iter(self.assessments.values()))
        return first.costs.total_outlays

    @property
    def worst_recovery_time(self) -> float:
        """The slowest recovery across the evaluated scenarios."""
        return max(a.recovery_time for a in self.assessments.values())

    @property
    def worst_data_loss(self) -> float:
        """The largest recent data loss across the evaluated scenarios."""
        return max(a.recent_data_loss for a in self.assessments.values())

    @property
    def worst_total_cost(self) -> float:
        """The most expensive scenario's total cost — the ranking metric."""
        return max(a.total_cost for a in self.assessments.values())

    @property
    def meets_objectives(self) -> bool:
        """RTO/RPO satisfied under every evaluated scenario."""
        return all(a.meets_objectives for a in self.assessments.values())

    def scenario(self, label_fragment: str) -> Assessment:
        """The assessment whose scenario label contains the fragment."""
        for label, assessment in self.assessments.items():
            if label_fragment in label:
                return assessment
        raise KeyError(label_fragment)


def run_whatif(
    designs: "Mapping[str, DesignFactory]",
    workload: Workload,
    scenarios: Sequence[FailureScenario],
    requirements: BusinessRequirements,
) -> "List[WhatIfResult]":
    """Evaluate every design against every scenario (Table 7's grid).

    ``designs`` maps display names to zero-argument factories.  Results
    preserve input order.
    """
    results: "List[WhatIfResult]" = []
    for name, factory in designs.items():
        design = factory()
        assessments = evaluate_scenarios(design, workload, scenarios, requirements)
        results.append(WhatIfResult(design_name=name, assessments=assessments))
    return results
