"""Design automation: what-if exploration and cost-driven optimization.

The paper positions its models as "the inner-most loop of an automated
optimization loop to choose the 'best' solution for a given set of
business requirements" (its companion work, *Designing for Disasters*).
This package builds that loop:

* :mod:`repro.design.whatif` — evaluate a set of named designs across a
  set of failure scenarios: the engine behind Table 7;
* :mod:`repro.design.space` — enumerate candidate designs from
  parameter grids (PiT flavor, backup policy, vault cadence, mirror
  links);
* :mod:`repro.design.optimizer` — pick the design minimizing worst-case
  total cost subject to RTO/RPO feasibility;
* :mod:`repro.design.sensitivity` — one-parameter sweeps for ablation
  studies (how each knob moves the four output metrics).
"""

from .whatif import WhatIfResult, run_whatif
from .space import DesignSpace, candidate_designs
from .optimizer import OptimizationOutcome, RankedDesign, optimize
from .sensitivity import SweepPoint, sweep_accumulation_window, sweep_link_count
from .frequency import (
    AvailabilitySummary,
    ExpectedCost,
    FailureFrequencies,
    expected_annual_cost,
    expected_availability,
    optimize_expected,
)
from .analysis import TradeoffPoint, dominated_by, pareto_frontier
from .headroom import max_supported_capacity, max_supported_scale

__all__ = [
    "WhatIfResult",
    "run_whatif",
    "DesignSpace",
    "candidate_designs",
    "OptimizationOutcome",
    "RankedDesign",
    "optimize",
    "SweepPoint",
    "sweep_accumulation_window",
    "sweep_link_count",
    "ExpectedCost",
    "FailureFrequencies",
    "expected_annual_cost",
    "optimize_expected",
    "AvailabilitySummary",
    "expected_availability",
    "TradeoffPoint",
    "dominated_by",
    "pareto_frontier",
    "max_supported_capacity",
    "max_supported_scale",
]
