"""Units, quantity parsing and humanized formatting.

The framework works internally in SI base units:

* sizes in **bytes** (``float``),
* rates in **bytes per second**,
* durations in **seconds**,
* money in **US dollars**.

Keeton & Merchant use *binary* prefixes throughout the DSN'04 case study
(verified in DESIGN.md section 2 against the Table 5 arithmetic: a
1360 GB dataset backed up over 48 hours yields the paper's 8.1 MB/s only
when GB = 2**30 and MB = 2**20).  The constants here therefore follow the
binary convention: ``KB = 2**10``, ``MB = 2**20`` and so on.  Decimal
constants are available with the unambiguous IEC-complementary names
``KB_DEC``/``MB_DEC``/... for interconnect link rates quoted in
megabits per second (an OC-3 is 155 * 10**6 bits/s).

The parsing helpers accept strings such as ``"1360 GB"``, ``"799 KB/s"``,
``"12 hr"`` or ``"48h"``; they exist so that configuration files and the
CLI can use the same vocabulary as the paper's tables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from .exceptions import UnitError

Number = Union[int, float]


# --------------------------------------------------------------------------
# Physical dimensions.
#
# Every quantity the framework computes lives in one of four base
# dimensions — sizes (bytes), durations (seconds), money (dollars) — or a
# ratio of them (bytes/s, $/s).  A :class:`Dimension` records the integer
# exponent of each base dimension, so derived dimensions fall out of
# ordinary arithmetic: ``SIZE / TIME == RATE`` and ``RATE * TIME == SIZE``.
# The dimension checker (:mod:`repro.lint.dimcheck`) uses this algebra to
# typecheck expressions over the constants below.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Dimension:
    """Integer exponents over the framework's base dimensions.

    ``Dimension(size=1, time=-1)`` is bytes per second; the all-zero
    dimension is a plain number (a count, fraction or utilization).
    """

    size: int = 0
    time: int = 0
    money: int = 0

    def __mul__(self, other: "Dimension") -> "Dimension":
        return Dimension(
            size=self.size + other.size,
            time=self.time + other.time,
            money=self.money + other.money,
        )

    def __truediv__(self, other: "Dimension") -> "Dimension":
        return Dimension(
            size=self.size - other.size,
            time=self.time - other.time,
            money=self.money - other.money,
        )

    def __pow__(self, exponent: int) -> "Dimension":
        return Dimension(
            size=self.size * exponent,
            time=self.time * exponent,
            money=self.money * exponent,
        )

    @property
    def is_dimensionless(self) -> bool:
        """True for plain numbers (counts, fractions, utilizations)."""
        return self.size == 0 and self.time == 0 and self.money == 0

    def symbol(self) -> str:
        """Human rendering: ``"bytes/s"``, ``"$/s"``, ``"1"``."""
        numerator: "List[str]" = []
        denominator: "List[str]" = []
        for name, exponent in (
            ("$", self.money),
            ("bytes", self.size),
            ("s", self.time),
        ):
            if exponent == 0:
                continue
            magnitude = abs(exponent)
            part = name if magnitude == 1 else f"{name}^{magnitude}"
            (numerator if exponent > 0 else denominator).append(part)
        top = "*".join(numerator) or "1"
        if not denominator:
            return top
        return f"{top}/{'*'.join(denominator)}"


#: The base and derived dimensions of the framework's vocabulary.
DIMENSIONLESS = Dimension()
SIZE = Dimension(size=1)
TIME = Dimension(time=1)
MONEY = Dimension(money=1)
RATE = SIZE / TIME
MONEY_RATE = MONEY / TIME
#: Event frequency (occurrences per second, the ``1/s`` family).  The
#: risk layer attaches these to failure scenarios: a disk array that
#: fails 0.5 times a year has an occurrence rate of ``0.5 / YEAR``.
FREQUENCY = DIMENSIONLESS / TIME


# --------------------------------------------------------------------------
# Dimension-bearing ``float`` aliases for annotations.
#
# Pure documentation at runtime and for mypy (each is exactly ``float``),
# but the dimension checker reads them: a parameter annotated ``Seconds``
# is seeded with the TIME dimension and a function declared ``-> Bytes``
# has its return expressions checked against SIZE (rule DIM003).
# --------------------------------------------------------------------------

Seconds = float
Bytes = float
BytesPerSecond = float
Dollars = float
DollarsPerSecond = float
Fraction = float
PerSecond = float

#: Annotation name -> dimension, for the checker's annotation seeding.
ANNOTATION_DIMENSIONS: "Dict[str, Dimension]" = {
    "Seconds": TIME,
    "Bytes": SIZE,
    "BytesPerSecond": RATE,
    "Dollars": MONEY,
    "DollarsPerSecond": MONEY_RATE,
    "Fraction": DIMENSIONLESS,
    "PerSecond": FREQUENCY,
}

# --------------------------------------------------------------------------
# Size constants (binary, matching the paper's usage).
# --------------------------------------------------------------------------

BYTE = 1.0
KB = 2.0 ** 10
MB = 2.0 ** 20
GB = 2.0 ** 30
TB = 2.0 ** 40
PB = 2.0 ** 50

# Decimal variants, used for telecom link rates (e.g. OC-3 at 155 Mbit/s).
KB_DEC = 1e3
MB_DEC = 1e6
GB_DEC = 1e9
TB_DEC = 1e12

BIT = 1.0 / 8.0
KBIT = KB_DEC / 8.0
MBIT = MB_DEC / 8.0
GBIT = GB_DEC / 8.0

# --------------------------------------------------------------------------
# Duration constants.
# --------------------------------------------------------------------------

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY
# The paper's "3 years" vault retention and three-year cost depreciation
# use calendar years; 365 days is the convention adopted here.
YEAR = 365 * DAY
MONTH = YEAR / 12.0

#: Machine-readable dimension metadata for every unit constant above.
#: The dimension checker seeds its lattice from this table: an expression
#: multiplying by ``GB`` carries SIZE, one multiplying by ``HOUR`` carries
#: TIME.  Binary and decimal size constants share the SIZE dimension (the
#: checker tracks the convention separately to flag binary/decimal mixing).
DIMENSIONS: "Dict[str, Dimension]" = {
    "BYTE": SIZE,
    "KB": SIZE,
    "MB": SIZE,
    "GB": SIZE,
    "TB": SIZE,
    "PB": SIZE,
    "KB_DEC": SIZE,
    "MB_DEC": SIZE,
    "GB_DEC": SIZE,
    "TB_DEC": SIZE,
    "BIT": SIZE,
    "KBIT": SIZE,
    "MBIT": SIZE,
    "GBIT": SIZE,
    "SECOND": TIME,
    "MINUTE": TIME,
    "HOUR": TIME,
    "DAY": TIME,
    "WEEK": TIME,
    "MONTH": TIME,
    "YEAR": TIME,
}

#: Constants that follow the decimal (10**n) convention; everything else
#: in ``DIMENSIONS`` with the SIZE dimension is binary (2**n).  ``BIT``-
#: family constants are decimal because link rates are quoted in powers
#: of ten (an OC-3 is 155 * 10**6 bits/s).
DECIMAL_SIZE_CONSTANTS: "Tuple[str, ...]" = (
    "KB_DEC",
    "MB_DEC",
    "GB_DEC",
    "TB_DEC",
    "BIT",
    "KBIT",
    "MBIT",
    "GBIT",
)

_SIZE_SUFFIXES = {
    "b": BYTE,
    "byte": BYTE,
    "bytes": BYTE,
    "kb": KB,
    "kib": KB,
    "mb": MB,
    "mib": MB,
    "gb": GB,
    "gib": GB,
    "tb": TB,
    "tib": TB,
    "pb": PB,
    "pib": PB,
    "kbit": KBIT,
    "mbit": MBIT,
    "gbit": GBIT,
    "kbps": KBIT,
    "mbps": MBIT,
    "gbps": GBIT,
}

_DURATION_SUFFIXES = {
    "s": SECOND,
    "sec": SECOND,
    "secs": SECOND,
    "second": SECOND,
    "seconds": SECOND,
    "min": MINUTE,
    "mins": MINUTE,
    "minute": MINUTE,
    "minutes": MINUTE,
    "h": HOUR,
    "hr": HOUR,
    "hrs": HOUR,
    "hour": HOUR,
    "hours": HOUR,
    "d": DAY,
    "day": DAY,
    "days": DAY,
    "w": WEEK,
    "wk": WEEK,
    "wks": WEEK,
    "week": WEEK,
    "weeks": WEEK,
    "mo": MONTH,
    "month": MONTH,
    "months": MONTH,
    "y": YEAR,
    "yr": YEAR,
    "yrs": YEAR,
    "year": YEAR,
    "years": YEAR,
}

_QUANTITY_RE = re.compile(
    r"^\s*(?P<value>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)\s*(?P<unit>[a-zA-Z/]*)\s*$"
)


def _split_quantity(text: str) -> "tuple[float, str]":
    """Split ``"12 hr"`` into ``(12.0, "hr")``; raise :class:`UnitError`."""
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse quantity {text!r}")
    return float(match.group("value")), match.group("unit").lower()


def parse_size(value: Union[str, Number]) -> float:
    """Return a size in bytes.

    Accepts a plain number (already bytes) or a string with a suffix,
    e.g. ``"1360 GB"`` or ``"1 MB"``.
    """
    if isinstance(value, (int, float)):
        return float(value)
    number, unit = _split_quantity(value)
    if unit == "":
        return number
    try:
        return number * _SIZE_SUFFIXES[unit]
    except KeyError:
        raise UnitError(f"unknown size unit {unit!r} in {value!r}") from None


def parse_rate(value: Union[str, Number]) -> float:
    """Return a rate in bytes/second.

    Accepts a plain number (already bytes/s) or a string such as
    ``"799 KB/s"``, ``"155 Mbps"`` or ``"25 MB/s"``.
    """
    if isinstance(value, (int, float)):
        return float(value)
    number, unit = _split_quantity(value)
    if unit == "":
        return number
    if unit.endswith("/s"):
        unit = unit[:-2]
    try:
        return number * _SIZE_SUFFIXES[unit]
    except KeyError:
        raise UnitError(f"unknown rate unit {unit!r} in {value!r}") from None


def parse_duration(value: Union[str, Number]) -> float:
    """Return a duration in seconds.

    Accepts a plain number (already seconds) or a string such as
    ``"12 hr"``, ``"48h"``, ``"1 wk"`` or ``"3 years"``.
    """
    if isinstance(value, (int, float)):
        return float(value)
    number, unit = _split_quantity(value)
    if unit == "":
        return number
    try:
        return number * _DURATION_SUFFIXES[unit]
    except KeyError:
        raise UnitError(f"unknown duration unit {unit!r} in {value!r}") from None


def parse_event_rate(value: Union[str, Number]) -> float:
    """Return an event occurrence rate in events per second.

    Accepts a plain number (already events/second) or a string with an
    explicit per-duration unit such as ``"0.5/yr"``, ``"2/year"`` or
    ``"1e-9/s"``.  Spec files that want the paper's events-per-year
    convention spell the unit out (``"0.5/yr"``) — a bare number is
    base units, the same contract as :func:`parse_size` and friends.
    """
    if isinstance(value, (int, float)):
        return float(value)
    number, unit = _split_quantity(value)
    if unit == "":
        return number
    if not unit.startswith("/"):
        raise UnitError(
            f"event rate unit must be per-duration ('/yr', '/s'), "
            f"got {unit!r} in {value!r}"
        )
    try:
        return number / _DURATION_SUFFIXES[unit[1:]]
    except KeyError:
        raise UnitError(f"unknown event rate unit {unit!r} in {value!r}") from None


# --------------------------------------------------------------------------
# Humanized formatting (used by reporting and benchmark output).
# --------------------------------------------------------------------------


def format_size(num_bytes: float, precision: int = 1) -> str:
    """Render a byte count with the largest sensible binary prefix."""
    magnitude = abs(num_bytes)
    for suffix, scale in (("PB", PB), ("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if magnitude >= scale:
            return f"{num_bytes / scale:.{precision}f} {suffix}"
    return f"{num_bytes:.0f} B"


def format_rate(bytes_per_sec: float, precision: int = 1) -> str:
    """Render a byte rate with the largest sensible binary prefix."""
    magnitude = abs(bytes_per_sec)
    for suffix, scale in (("TB/s", TB), ("GB/s", GB), ("MB/s", MB), ("KB/s", KB)):
        if magnitude >= scale:
            return f"{bytes_per_sec / scale:.{precision}f} {suffix}"
    return f"{bytes_per_sec:.0f} B/s"


def format_duration(seconds: float, precision: int = 1) -> str:
    """Render a duration the way the paper's tables do.

    Sub-second values are shown in seconds with extra precision (the
    paper prints "0.004 s"); values of less than two minutes in seconds;
    less than 2 hours in minutes; less than 3 days in hours; otherwise in
    hours when under 10 days (the paper reports "217 hr", "1429 hr") and
    days beyond that.
    """
    magnitude = abs(seconds)
    if magnitude == 0:
        return "0 s"
    if magnitude < 1:
        return f"{seconds:.3g} s"
    if magnitude < 2 * MINUTE:
        return f"{seconds:.{precision}f} s"
    if magnitude < 2 * HOUR:
        return f"{seconds / MINUTE:.{precision}f} min"
    if magnitude < 10 * DAY:
        return f"{seconds / HOUR:.{precision}f} hr"
    if magnitude < 120 * DAY:
        return f"{seconds / DAY:.{precision}f} days"
    return f"{seconds / YEAR:.{precision}f} yr"


def format_money(dollars: float, precision: int = 2) -> str:
    """Render a dollar amount the way the paper does ("$11.94M")."""
    if dollars == float("inf"):
        return "unbounded"
    magnitude = abs(dollars)
    if magnitude >= 1e6:
        return f"${dollars / 1e6:.{precision}f}M"
    if magnitude >= 1e3:
        return f"${dollars / 1e3:.{precision}f}K"
    return f"${dollars:.{precision}f}"


def format_percent(fraction: float, precision: int = 1) -> str:
    """Render a fraction as a percentage string ("87.4%")."""
    return f"{fraction * 100:.{precision}f}%"


def format_event_rate(per_second: float, precision: int = 3) -> str:
    """Render an occurrence rate in the paper's events-per-year idiom."""
    return f"{per_second * YEAR:.{precision}g}/yr"
