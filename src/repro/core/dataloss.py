"""Recent data loss and recovery-source selection (paper §3.3.2–3.3.3).

For each surviving level the framework computes the range of time whose
RPs are *guaranteed* present (Figure 3): the newest guaranteed RP is
``sum(holdW_i + propW_i) + accW_j`` old (generalized here to the cycle
model's worst lag plus the upstream delays), and the oldest reaches back
a further ``(retCnt_j - 1) * cyclePer_j``.

Given the recovery target, three cases per level (§3.3.3):

1. target newer than the level's newest guaranteed RP → the level is
   usable, losing the level's full time lag of recent updates;
2. target within the guaranteed range → usable, losing at most the
   worst spacing between RPs (the paper's ``accW_j``);
3. target older than the range → the level cannot serve the recovery.

The closest usable level (lowest index — fastest media, freshest RPs)
becomes the recovery source.  If no level qualifies, the data object is
lost in its entirety.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..exceptions import RecoveryError
from ..scenarios.failures import FailureScenario
from .hierarchy import Level, StorageDesign


@dataclass(frozen=True)
class LevelRange:
    """A level's guaranteed RP age range (ages relative to 'now')."""

    level_index: int
    technique_name: str
    newest_age: float
    oldest_age: float

    def covers(self, target_age: float) -> bool:
        """Whether an RP at or before the target age is guaranteed here."""
        return target_age <= self.oldest_age


@dataclass(frozen=True)
class DataLossResult:
    """Worst-case recent data loss and the level that bounds it.

    ``source_index`` and ``source_technique`` mirror the source level's
    identity as plain values; they are filled automatically from
    ``source_level`` and survive serialization (a result restored from
    the engine's cache has ``source_level=None`` but keeps both).
    """

    source_level: Optional[Level]
    data_loss: float
    total_loss: bool
    target_age: float
    ranges: Tuple[LevelRange, ...]
    source_index: Optional[int] = None
    source_technique: Optional[str] = None

    def __post_init__(self) -> None:
        if self.source_level is not None:
            if self.source_index is None:
                object.__setattr__(self, "source_index", self.source_level.index)
            if self.source_technique is None:
                object.__setattr__(
                    self, "source_technique", self.source_level.technique.name
                )

    @property
    def source_name(self) -> str:
        """The recovery source technique's name ("split mirror", ...)."""
        if self.source_technique is None:
            return "(unrecoverable)"
        return self.source_technique


def level_range(design: StorageDesign, level: Level) -> LevelRange:
    """The Figure 3 guaranteed range for one level of a design."""
    upstream = design.upstream_delay(level.index)
    technique = level.technique
    newest_age = upstream + technique.worst_lag()
    oldest_age = (
        upstream
        + technique.full_availability_delay()
        + technique.retention_span()
    )
    return LevelRange(
        level_index=level.index,
        technique_name=technique.name,
        newest_age=newest_age,
        oldest_age=max(oldest_age, newest_age - technique.worst_spacing()),
    )


def _loss_for_level(
    design: StorageDesign, level: Level, target_age: float
) -> Optional[float]:
    """Worst-case loss using this level, or None when it cannot serve."""
    rng = level_range(design, level)
    if target_age < rng.newest_age:
        # Case 1: the wanted RP hasn't propagated here yet; restore the
        # newest RP present and lose the level's whole time lag.
        return rng.newest_age
    if target_age <= rng.oldest_age:
        # Case 2: RPs bracketing the target are retained; lose at most
        # one RP spacing relative to the target.
        return level.technique.worst_spacing()
    # Case 3: too old — already expired from this level.
    return None


def find_recovery_source(
    design: StorageDesign, scenario: FailureScenario
) -> DataLossResult:
    """Pick the recovery source level and its worst-case data loss.

    Surviving levels are considered closest-first (they hold the most
    recent RPs on the fastest media).  A level whose guaranteed range
    has expired past the target is skipped; if every level has, the
    object is a total loss.
    """
    target_age = scenario.recovery_target_age
    survivors = design.surviving_levels(scenario)
    ranges = tuple(level_range(design, level) for level in survivors)
    for level in survivors:
        loss = _loss_for_level(design, level, target_age)
        if loss is not None:
            return DataLossResult(
                source_level=level,
                data_loss=loss,
                total_loss=False,
                target_age=target_age,
                ranges=ranges,
            )
    return DataLossResult(
        source_level=None,
        data_loss=float("inf"),
        total_loss=True,
        target_age=target_age,
        ranges=ranges,
    )


def compute_data_loss(
    design: StorageDesign,
    scenario: FailureScenario,
    allow_total_loss: bool = True,
) -> DataLossResult:
    """Worst-case recent data loss for the scenario.

    With ``allow_total_loss=False`` an unrecoverable scenario raises
    :class:`~repro.exceptions.RecoveryError` instead of returning an
    infinite loss.
    """
    result = find_recovery_source(design, scenario)
    if result.total_loss and not allow_total_loss:
        raise RecoveryError(
            f"design {design.name!r} retains no RP usable for "
            f"{scenario.describe()}: the data object is lost"
        )
    return result
