"""Normal-mode utilization (paper section 3.3.1).

Two steps, mirroring the paper's decomposition: each hardware device
model computes its *local* bandwidth and capacity utilization from its
demand ledger, then a *global* calculation takes the system utilization
as that of the most heavily utilized device and flags over-commitment
(``capUtil > 1`` or ``bwUtil > 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..devices.base import DeviceUtilization
from ..exceptions import BandwidthExceededError, CapacityExceededError
from ..obs import get_metrics, get_tracer
from .hierarchy import StorageDesign


@dataclass(frozen=True)
class SystemUtilization:
    """The global utilization picture: per-device reports plus the maxima."""

    devices: Tuple[DeviceUtilization, ...]
    max_capacity_utilization: float
    max_capacity_device: Optional[str]
    max_bandwidth_utilization: float
    max_bandwidth_device: Optional[str]

    @property
    def system_utilization(self) -> float:
        """The paper's headline metric: the busiest component's utilization."""
        return max(self.max_capacity_utilization, self.max_bandwidth_utilization)

    @property
    def feasible(self) -> bool:
        """True when no device is over-committed."""
        return (
            self.max_capacity_utilization <= 1.0
            and self.max_bandwidth_utilization <= 1.0
        )

    def device(self, name: str) -> DeviceUtilization:
        """The report for a named device."""
        for report in self.devices:
            if report.device_name == name:
                return report
        raise KeyError(f"no utilization report for device {name!r}")

    def raise_if_overcommitted(self) -> None:
        """Raise the paper's section 3.3.1 errors on over-commitment."""
        if self.max_capacity_utilization > 1.0:
            raise CapacityExceededError(
                self.max_capacity_device or "?", self.max_capacity_utilization
            )
        if self.max_bandwidth_utilization > 1.0:
            raise BandwidthExceededError(
                self.max_bandwidth_device or "?", self.max_bandwidth_utilization
            )


def compute_utilization(design: StorageDesign, strict: bool = False) -> SystemUtilization:
    """Collect per-device utilizations and the global maxima.

    Demands must already be registered (see
    :func:`~repro.core.demands.register_design_demands`).  With
    ``strict=True`` an over-committed device raises immediately.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span("utilization.compute", design=design.name) as span:
        reports = tuple(device.utilization() for device in design.devices())
        max_cap, max_cap_dev = 0.0, None
        max_bw, max_bw_dev = 0.0, None
        for report in reports:
            if report.capacity_utilization > max_cap:
                max_cap, max_cap_dev = report.capacity_utilization, report.device_name
            if report.bandwidth_utilization > max_bw:
                max_bw, max_bw_dev = report.bandwidth_utilization, report.device_name
        result = SystemUtilization(
            devices=reports,
            max_capacity_utilization=max_cap,
            max_capacity_device=max_cap_dev,
            max_bandwidth_utilization=max_bw,
            max_bandwidth_device=max_bw_dev,
        )
        span.set(
            devices=len(reports),
            max_capacity=max_cap,
            max_bandwidth=max_bw,
        )
        metrics.inc("utilization.computations")
        metrics.set_gauge("utilization.max_capacity", max_cap)
        metrics.set_gauge("utilization.max_bandwidth", max_bw)
        if strict:
            result.raise_if_overcommitted()
        return result
