"""The RP propagation hierarchy: levels and the storage system design.

A :class:`StorageDesign` is an ordered list of :class:`Level` objects.
Level 0 is always the primary copy; each subsequent level receives RPs
from the one before it, retains some, and may forward them onward
(paper section 3.2, Figure 1).  Each level binds its technique to the
device that stores its RPs and, when RPs cross hardware, to the
interconnect that carries them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..devices.base import Device
from ..devices.spares import SpareConfig
from ..exceptions import DesignError
from ..scenarios.failures import FailureScenario, FailureScope
from ..units import HOUR
from ..techniques.base import ProtectionTechnique


@dataclass(frozen=True)
class Level:
    """One level of the hierarchy: a technique bound to its devices.

    Parameters
    ----------
    index:
        Level number (0 = primary copy).
    technique:
        The data protection technique maintaining this level's RPs.
    store:
        The device holding this level's RPs.  Co-located techniques
        (split mirror, snapshot) use the same device as their parent
        level.
    transport:
        The interconnect carrying RPs from the parent level, when one
        is involved (SAN for backup, WAN links for remote mirroring, a
        courier for vaulting).  ``None`` for intra-device levels.
    parent_index:
        The level this one receives RPs from.  The paper's hierarchies
        are linear (each level feeds from the previous one), but real
        designs branch: a snapshot *and* a mirror can both feed from the
        primary copy.  Defaults to ``index - 1``.
    """

    index: int
    technique: ProtectionTechnique
    store: Device
    transport: Optional[Device] = None
    parent_index: int = -1

    def __post_init__(self) -> None:
        if self.index < 0:
            raise DesignError(f"level index must be >= 0, got {self.index}")
        if self.transport is not None and not self.transport.is_interconnect:
            raise DesignError(
                f"level {self.index} transport {self.transport.name!r} is not "
                "an interconnect device"
            )
        if self.parent_index == -1:
            object.__setattr__(self, "parent_index", self.index - 1)
        if self.index > 0 and not 0 <= self.parent_index < self.index:
            raise DesignError(
                f"level {self.index} must feed from an earlier level, "
                f"got parent {self.parent_index}"
            )

    def describe(self) -> str:
        """One-line rendering for hierarchy diagrams."""
        via = f" via {self.transport.name}" if self.transport is not None else ""
        feed = (
            f" <- level {self.parent_index}"
            if self.index > 0 and self.parent_index != self.index - 1
            else ""
        )
        return (
            f"level {self.index}: {self.technique.describe()} "
            f"on {self.store.name}{via}{feed}"
        )


class StorageDesign:
    """A complete storage system design: hierarchy + shared recovery facility.

    Build with :meth:`add_level`, primary copy first::

        design = StorageDesign("baseline")
        design.add_level(PrimaryCopy(), store=array)
        design.add_level(SplitMirror("12 hr", 4), store=array)
        design.add_level(Backup("1 wk", "48 hr", "1 hr", 4),
                         store=library, transport=san)
        design.add_level(RemoteVaulting("4 wk", "24 hr", hold, 39),
                         store=vault, transport=courier)

    Parameters
    ----------
    name:
        Design label used throughout reports.
    recovery_facility:
        The shared recovery facility used when a failure scope destroys
        a device *and* its dedicated (co-located) spare — the case
        study's remote hosting facility: 9 h provisioning at 0.2x cost.
        ``None`` means site-scale failures of unspared devices are
        unrecoverable.
    """

    def __init__(
        self,
        name: str,
        recovery_facility: Optional[SpareConfig] = None,
    ):
        if not name:
            raise DesignError("design requires a name")
        self.name = name
        self.recovery_facility = recovery_facility
        self._levels: List[Level] = []

    # -- construction -----------------------------------------------------------

    def add_level(
        self,
        technique: ProtectionTechnique,
        store: Device,
        transport: Optional[Device] = None,
        feeds_from: Optional[int] = None,
    ) -> Level:
        """Append a level to the hierarchy and return it.

        ``feeds_from`` names the level this one receives RPs from; by
        default the previous level (the paper's linear hierarchy).
        Branching lets a snapshot and a mirror both feed from level 0.
        """
        index = len(self._levels)
        parent_index = index - 1 if feeds_from is None else feeds_from
        if index == 0:
            if not technique.is_primary:
                raise DesignError("level 0 must be a primary copy technique")
            if transport is not None:
                raise DesignError("level 0 has no inbound transport")
            if feeds_from is not None:
                raise DesignError("level 0 feeds from nothing")
        else:
            if technique.is_primary:
                raise DesignError("only level 0 may be the primary copy")
            if not 0 <= parent_index < index:
                raise DesignError(
                    f"level {index} must feed from an existing earlier level, "
                    f"got {parent_index}"
                )
            parent_store = self._levels[parent_index].store
            if technique.co_located_with_source and store is not parent_store:
                raise DesignError(
                    f"{technique.name!r} keeps its copies on the source device; "
                    f"bind it to {parent_store.name!r}"
                )
        level = Level(
            index=index,
            technique=technique,
            store=store,
            transport=transport,
            parent_index=parent_index,
        )
        self._levels.append(level)
        return level

    def parent_of(self, level: Level) -> Level:
        """The level the given one receives RPs from."""
        if level.index == 0:
            raise DesignError("level 0 has no parent")
        return self._levels[level.parent_index]

    # -- structure queries ---------------------------------------------------------

    @property
    def levels(self) -> Tuple[Level, ...]:
        """All levels, primary copy first."""
        return tuple(self._levels)

    @property
    def primary_level(self) -> Level:
        """Level 0."""
        if not self._levels:
            raise DesignError(f"design {self.name!r} has no levels")
        return self._levels[0]

    def secondary_levels(self) -> Tuple[Level, ...]:
        """Levels 1..n (the data protection techniques proper)."""
        return tuple(self._levels[1:])

    def level(self, index: int) -> Level:
        """The level with the given index."""
        try:
            return self._levels[index]
        except IndexError:
            raise DesignError(
                f"design {self.name!r} has no level {index}"
            ) from None

    def devices(self) -> Tuple[Device, ...]:
        """Unique devices (stores and transports) in first-use order."""
        seen: "Dict[int, Device]" = {}
        for level in self._levels:
            for device in (level.store, level.transport):
                if device is not None and id(device) not in seen:
                    seen[id(device)] = device
        return tuple(seen.values())

    def storage_devices(self) -> Tuple[Device, ...]:
        """Unique non-interconnect devices in first-use order."""
        return tuple(d for d in self.devices() if not d.is_interconnect)

    # -- derived designs ---------------------------------------------------------------

    def without_level(self, index: int, name: Optional[str] = None) -> "StorageDesign":
        """A derived design with one secondary level removed.

        This is the analytic half of degraded-mode evaluation (the
        paper's section 5 future work): evaluating the design as if a
        data protection technique were out of service.  Devices are
        shared with the original design (clear/re-register demands
        before evaluating either).  Level 0 cannot be removed.
        """
        if index == 0:
            raise DesignError("cannot remove the primary copy")
        removed = self.level(index)  # raises for unknown indices
        derived = StorageDesign(
            name or f"{self.name} [without {removed.technique.name}]",
            recovery_facility=self.recovery_facility,
        )
        index_map: "Dict[int, int]" = {}
        for level in self._levels:
            if level.index == index:
                continue
            if level.index == 0:
                derived.add_level(level.technique, store=level.store)
                index_map[0] = 0
                continue
            parent = level.parent_index
            if parent == index:
                # Children of the removed level re-attach to its parent.
                parent = removed.parent_index
            derived.add_level(
                level.technique,
                store=level.store,
                transport=level.transport,
                feeds_from=index_map[parent],
            )
            index_map[level.index] = len(derived.levels) - 1
        return derived

    # -- failure mapping --------------------------------------------------------------

    def failed_devices(self, scenario: FailureScenario) -> Tuple[Device, ...]:
        """The devices destroyed by the scenario's failure scope."""
        scope = scenario.scope
        if scope is FailureScope.DATA_OBJECT:
            return ()
        if scope is FailureScope.DISK_ARRAY:
            matches = [d for d in self.devices() if d.name == scenario.failed_device]
            if not matches:
                raise DesignError(
                    f"scenario names unknown device {scenario.failed_device!r}"
                )
            return tuple(matches)
        failed_at = scenario.failed_location or self.primary_level.store.location
        return tuple(
            device
            for device in self.devices()
            if scope.fails_location(failed_at, device.location)
        )

    def surviving_levels(self, scenario: FailureScenario) -> Tuple[Level, ...]:
        """Secondary levels whose store survives the failure."""
        failed = set(id(d) for d in self.failed_devices(scenario))
        return tuple(
            level
            for level in self.secondary_levels()
            if id(level.store) not in failed
        )

    # -- upstream delay sums (paper section 3.3.2) ----------------------------------------

    def upstream_delay(self, index: int) -> float:
        """Sum of ``holdW + propW`` along the ancestor chain.

        The delay an RP accumulates traversing the hierarchy *before*
        reaching the given level; the level's own windows are accounted
        by its technique's cycle model.  For linear hierarchies this is
        the paper's sum over levels ``1..index-1``; for branching ones
        only the actual ancestors contribute.
        """
        total = 0.0
        current = self._levels[index]
        while current.index > 0:
            parent = self._levels[current.parent_index]
            if parent.index > 0:
                total += parent.technique.full_availability_delay()
            current = parent
        return total

    # -- rendering ----------------------------------------------------------------------

    def _depth(self, level: Level) -> int:
        """Hops from level 0 along the parent chain."""
        depth = 0
        current = level
        while current.index > 0:
            current = self._levels[current.parent_index]
            depth += 1
        return depth

    def render_hierarchy(self) -> str:
        """ASCII rendering of the hierarchy (the paper's Figure 1)."""
        lines = [f"storage design: {self.name}"]
        for level in self._levels:
            indent = "  " * self._depth(level)
            arrow = "" if level.index == 0 else "-> "
            lines.append(f"{indent}{arrow}{level.describe()}")
        if self.recovery_facility is not None:
            lines.append(
                f"  [shared recovery facility: provision in "
                f"{self.recovery_facility.provisioning_time / HOUR:.1f} h, "
                f"{self.recovery_facility.discount:.0%} of dedicated cost]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<StorageDesign {self.name!r}, {len(self._levels)} levels>"
