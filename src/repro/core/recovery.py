"""Worst-case recovery time (paper section 3.3.4, Figure 4).

Recovery is a pipeline of stages along the recovery path, from the
source level's device toward the (possibly re-provisioned) primary
array.  Each stage contributes:

* a **parallelizable fixed period** (``parFix``) — spare provisioning,
  reconfiguration and negotiation for shared resources, which can
  overlap work at other levels (the case study provisions the recovery
  site while tapes fly);
* a **serialized fixed period** (``serFix``) — work that can only start
  once data arrives, such as tape load and seek;
* a **serialized transfer** (``serXfer``) — moving the recovery bytes,
  rate-limited to the minimum of the sender's, the interconnect's and
  the receiver's available bandwidth (what's left after normal-mode RP
  propagation demands).  Physical shipments take their door-to-door
  delay regardless of size, and cannot be gated by the receiving
  device's provisioning — cartridges can wait on a loading dock.

The plan records every step with absolute start/end times so the
Figure 4 dependency chart can be rendered.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Tuple

from ..devices.base import Device
from ..devices.interconnect import Shipment
from ..devices.spares import SpareType
from ..exceptions import RecoveryError
from ..obs import get_metrics, get_tracer
from ..scenarios.failures import FailureScenario, FailureScope
from ..units import format_duration, format_size
from ..workload.spec import Workload
from .dataloss import DataLossResult, find_recovery_source
from .hierarchy import Level, StorageDesign


@dataclass(frozen=True)
class RecoveryStep:
    """One task in the recovery pipeline, with absolute times (seconds).

    Transfer steps additionally carry the names of the devices they
    contend on (source, destination, and the interconnect if any) so
    event-level replays can model shared-bandwidth recovery.
    """

    label: str
    kind: str  # "provision" | "shipment" | "media-load" | "transfer"
    start: float
    end: float
    devices: "Tuple[str, ...]" = ()

    @property
    def duration(self) -> float:
        """The step's length in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class RecoveryPlan:
    """The full recovery pipeline and its worst-case completion time."""

    source_level_index: int
    source_name: str
    recovery_size: float
    steps: Tuple[RecoveryStep, ...]
    recovery_time: float

    def render_timeline(self) -> str:
        """ASCII Gantt of the recovery steps (the paper's Figure 4)."""
        lines = [
            f"recovery from {self.source_name} "
            f"({format_size(self.recovery_size)}), total "
            f"{format_duration(self.recovery_time)}"
        ]
        if not self.steps:
            return lines[0]
        span = max(step.end for step in self.steps) or 1.0
        width = 40
        for step in self.steps:
            begin = int(round(step.start / span * width))
            length = max(1, int(round(step.duration / span * width)))
            bar = " " * begin + "#" * min(length, width - begin)
            lines.append(
                f"  {step.label:<38} |{bar:<{width}}| "
                f"{format_duration(step.start)} -> {format_duration(step.end)}"
            )
        return "\n".join(lines)


def _provisioning_time(
    design: StorageDesign,
    device: Device,
    scenario: FailureScenario,
    failed_ids: "set[int]",
) -> float:
    """How long until a usable stand-in for ``device`` exists.

    Zero when the device survived.  A dedicated spare is co-located
    hardware: it rides out a device-scope failure but is destroyed along
    with its site/building/region.  A shared spare is assumed remote and
    survives any scope.  When the spare is gone too, the design's shared
    recovery facility is the last resort.
    """
    if id(device) not in failed_ids:
        return 0.0
    if device.is_interconnect:
        # Interconnect re-termination is part of facility provisioning;
        # it never gates recovery on its own in this model.
        return 0.0
    spare = device.spare
    if spare.exists:
        if spare.spare_type is SpareType.SHARED:
            return spare.provisioning_time
        if scenario.scope is FailureScope.DISK_ARRAY:
            return spare.provisioning_time
    facility = design.recovery_facility
    if facility is not None and facility.exists:
        return facility.provisioning_time
    raise RecoveryError(
        f"device {device.name!r} failed with no surviving spare and the "
        f"design {design.name!r} has no recovery facility"
    )


def _transfer_bandwidth(
    source: Device,
    destination: Device,
    transport: Optional[Device],
) -> float:
    """min(sender, interconnect, receiver) available bandwidth.

    The sender's rate is derated by its recovery read efficiency (tape
    streaming losses); an intra-device copy reads and writes the same
    hardware, so the effective rate is half the device's available
    bandwidth.
    """
    if source is destination:
        return source.available_bandwidth() / 2.0
    rate = min(
        source.available_bandwidth() * source.recovery_read_efficiency,
        destination.available_bandwidth(),
    )
    if transport is not None:
        rate = min(rate, transport.available_bandwidth())
    return rate


def _recovery_path(
    design: StorageDesign, source: Level
) -> "List[Tuple[Device, Optional[Device]]]":
    """The device chain of the recovery path.

    Returns ``[(node, inbound_transport), ...]`` from the source node to
    the primary store.  Levels that would only add latency are skipped
    (the paper's optimization); levels whose media *must* be read
    through other hardware (vaulted tapes through a tape library) route
    via that reader.
    """
    destination = design.primary_level.store
    path: "List[Tuple[Device, Optional[Device]]]" = [(source.store, None)]
    if source.technique.reads_via_source_level:
        if source.index < 1:
            raise RecoveryError(
                f"level {source.index} cannot read via a previous level"
            )
        reader = design.parent_of(source)
        path.append((reader.store, source.transport))
        path.append((destination, reader.transport))
    elif source.store is destination:
        path.append((destination, None))
    else:
        path.append((destination, source.transport))
    return path


def plan_recovery(
    design: StorageDesign,
    scenario: FailureScenario,
    workload: Workload,
    loss_result: Optional[DataLossResult] = None,
) -> RecoveryPlan:
    """Build the worst-case recovery plan for the scenario.

    Demands must already be registered (available bandwidths depend on
    them).  Raises :class:`~repro.exceptions.RecoveryError` when the
    scenario is unrecoverable.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    timed = metrics.enabled
    if timed:
        t0 = perf_counter()
    with tracer.span("recovery.plan", scenario=scenario.describe()) as span:
        plan = _build_plan(design, scenario, workload, loss_result)
        span.set(
            source=plan.source_name,
            recovery_size=plan.recovery_size,
            steps=len(plan.steps),
            recovery_time=plan.recovery_time,
        )
    metrics.inc("recovery.plans")
    metrics.inc("recovery.steps", len(plan.steps))
    if timed:
        metrics.observe("recovery.plan_ms", (perf_counter() - t0) * 1e3)
    return plan


def _build_plan(
    design: StorageDesign,
    scenario: FailureScenario,
    workload: Workload,
    loss_result: Optional[DataLossResult],
) -> RecoveryPlan:
    if loss_result is None:
        loss_result = find_recovery_source(design, scenario)
    if loss_result.source_level is None:
        raise RecoveryError(
            f"design {design.name!r} has no usable recovery source for "
            f"{scenario.describe()}"
        )
    source = loss_result.source_level
    failed_ids = {id(d) for d in design.failed_devices(scenario)}

    if scenario.scope is FailureScope.DATA_OBJECT:
        requested = scenario.object_size or workload.data_capacity
    else:
        requested = workload.data_capacity
    recovery_size = source.technique.recovery_size(workload, requested)

    path = _recovery_path(design, source)
    steps: "List[RecoveryStep]" = []

    # Provisioning runs in parallel from t=0 for every node that needs it.
    ready_gate: "List[float]" = []
    for node, _transport in path:
        par_fix = _provisioning_time(design, node, scenario, failed_ids)
        ready_gate.append(par_fix)
        if par_fix > 0:
            steps.append(
                RecoveryStep(
                    label=f"provision stand-in for {node.name}",
                    kind="provision",
                    start=0.0,
                    end=par_fix,
                )
            )

    # Walk the chain: the source is ready once provisioned and its media
    # are mounted; each hop then ships or streams the data onward.
    first_node = path[0][0]
    clock = ready_gate[0]
    if first_node.access_delay > 0:
        steps.append(
            RecoveryStep(
                label=f"load media at {first_node.name}",
                kind="media-load",
                start=clock,
                end=clock + first_node.access_delay,
            )
        )
        clock += first_node.access_delay

    for hop in range(1, len(path)):
        prev_node = path[hop - 1][0]
        node, transport = path[hop]
        if isinstance(transport, Shipment):
            # Cartridges leave as soon as the sender is ready; the
            # receiving device's provisioning overlaps the transit.
            arrival = clock + transport.transfer_time(recovery_size)
            steps.append(
                RecoveryStep(
                    label=f"ship media {prev_node.name} -> {node.name}",
                    kind="shipment",
                    start=clock,
                    end=arrival,
                )
            )
            clock = max(arrival, ready_gate[hop])
            if node.access_delay > 0:
                steps.append(
                    RecoveryStep(
                        label=f"load media at {node.name}",
                        kind="media-load",
                        start=clock,
                        end=clock + node.access_delay,
                    )
                )
                clock += node.access_delay
        else:
            # A streamed transfer starts only once the receiver exists.
            start = max(clock, ready_gate[hop])
            rate = _transfer_bandwidth(prev_node, node, transport)
            if rate <= 0:
                raise RecoveryError(
                    f"no bandwidth available to restore from "
                    f"{prev_node.name!r} to {node.name!r}"
                )
            duration = recovery_size / rate if rate != float("inf") else 0.0
            contended = [prev_node.name, node.name]
            if transport is not None:
                contended.append(transport.name)
            steps.append(
                RecoveryStep(
                    label=f"restore data {prev_node.name} -> {node.name}",
                    kind="transfer",
                    start=start,
                    end=start + duration,
                    devices=tuple(dict.fromkeys(contended)),
                )
            )
            clock = start + duration
            if hop < len(path) - 1 and node.access_delay > 0:
                steps.append(
                    RecoveryStep(
                        label=f"re-read media at {node.name}",
                        kind="media-load",
                        start=clock,
                        end=clock + node.access_delay,
                    )
                )
                clock += node.access_delay

    return RecoveryPlan(
        source_level_index=source.index,
        source_name=source.technique.name,
        recovery_size=recovery_size,
        steps=tuple(steps),
        recovery_time=clock,
    )
