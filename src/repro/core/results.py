"""Result dataclasses: everything one evaluation produces.

An :class:`Assessment` bundles the paper's four output metrics — system
utilization, recovery time, recent data loss and overall cost — together
with the detailed sub-results they were derived from, so reports and
benchmarks can drill down without recomputing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs.provenance import EvaluationProvenance, explain_assessment
from ..scenarios.failures import FailureScenario
from ..scenarios.requirements import BusinessRequirements
from ..units import format_duration, format_money, format_percent
from .cost import CostBreakdown
from .dataloss import DataLossResult
from .recovery import RecoveryPlan
from .utilization import SystemUtilization


@dataclass(frozen=True)
class Assessment:
    """One design evaluated against one failure scenario."""

    design_name: str
    scenario: FailureScenario
    requirements: BusinessRequirements
    utilization: SystemUtilization
    data_loss: DataLossResult
    recovery: Optional[RecoveryPlan]
    costs: CostBreakdown
    #: Why the numbers came out this way (None only for hand-built
    #: assessments that bypassed :func:`~repro.core.evaluate.evaluate`).
    provenance: Optional[EvaluationProvenance] = None

    # -- the paper's four output metrics --------------------------------------

    @property
    def system_utilization(self) -> float:
        """Utilization of the maximally utilized storage component."""
        return self.utilization.system_utilization

    @property
    def recovery_time(self) -> float:
        """Worst-case seconds from failure to the application running."""
        if self.recovery is None:
            return float("inf")
        return self.recovery.recovery_time

    @property
    def recent_data_loss(self) -> float:
        """Worst-case seconds of recent updates lost."""
        return self.data_loss.data_loss

    @property
    def total_cost(self) -> float:
        """Annual outlays plus this scenario's penalties."""
        return self.costs.total_cost

    # -- objectives --------------------------------------------------------------

    @property
    def meets_objectives(self) -> bool:
        """Whether the declared RTO/RPO (if any) are satisfied."""
        return self.requirements.meets_objectives(
            self.recovery_time, self.recent_data_loss
        )

    def explain(self) -> str:
        """Why each of the four metrics came out this way (per line)."""
        return explain_assessment(self)

    def summary(self) -> str:
        """The Table 6 style one-liner for this scenario."""
        return (
            f"{self.design_name} / {self.scenario.describe()}: "
            f"source={self.data_loss.source_name}, "
            f"RT={format_duration(self.recovery_time)}, "
            f"DL={format_duration(self.recent_data_loss)}, "
            f"util={format_percent(self.system_utilization)}, "
            f"cost={format_money(self.total_cost)}"
        )
