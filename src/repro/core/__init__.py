"""The compositional framework (paper section 3.3).

This package combines the data protection technique models and the
hardware device models into whole-system answers:

* :mod:`repro.core.hierarchy` — :class:`Level` and
  :class:`StorageDesign`: the RP propagation hierarchy and its device
  bindings;
* :mod:`repro.core.validate` — the section 3.2.1 inter-level parameter
  conventions;
* :mod:`repro.core.demands` — walking the hierarchy to register every
  technique's demands on its devices;
* :mod:`repro.core.utilization` — normal-mode utilization (§3.3.1);
* :mod:`repro.core.dataloss` — RP range math and worst-case recent data
  loss (§3.3.2–3.3.3), including recovery-source selection;
* :mod:`repro.core.recovery` — the recovery-time recursion with its
  per-step breakdown (§3.3.4, Figure 4);
* :mod:`repro.core.cost` — outlays and penalties (§3.3.5);
* :mod:`repro.core.results` — result dataclasses;
* :mod:`repro.core.evaluate` — the one-call entry point
  :func:`~repro.core.evaluate.evaluate`.
"""

from .hierarchy import Level, StorageDesign
from .demands import register_design_demands
from .utilization import SystemUtilization, compute_utilization
from .dataloss import DataLossResult, compute_data_loss, find_recovery_source
from .recovery import RecoveryPlan, RecoveryStep, plan_recovery
from .options import RecoveryOption, recovery_options, time_optimal_option
from .cost import CostBreakdown, compute_costs
from .results import Assessment
from .evaluate import evaluate, evaluate_scenarios
from .validate import validate_design

__all__ = [
    "Level",
    "StorageDesign",
    "register_design_demands",
    "SystemUtilization",
    "compute_utilization",
    "DataLossResult",
    "compute_data_loss",
    "find_recovery_source",
    "RecoveryPlan",
    "RecoveryStep",
    "plan_recovery",
    "RecoveryOption",
    "recovery_options",
    "time_optimal_option",
    "CostBreakdown",
    "compute_costs",
    "Assessment",
    "evaluate",
    "evaluate_scenarios",
    "validate_design",
]
