"""Overall system cost: outlays plus penalties (paper section 3.3.5).

**Outlays** are annualized expenditures computed per data protection
technique by each device model (fixed costs go to the device's primary
technique, secondary techniques pay only their additional per-capacity /
per-bandwidth / per-shipment costs, spares multiply by their discount
factor).  A design with a shared recovery facility additionally pays the
facility's discount fraction of every primary-site storage device it
stands behind.

**Penalties** are per-failure-event dollars: worst-case recovery time
times the data unavailability penalty rate, plus worst-case recent data
loss times the loss penalty rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..obs import get_metrics, get_tracer
from ..scenarios.requirements import BusinessRequirements
from ..units import format_money
from .dataloss import DataLossResult
from .hierarchy import StorageDesign
from .recovery import RecoveryPlan

#: Outlay key under which shared recovery-facility costs are reported.
RECOVERY_FACILITY = "recovery facility"


@dataclass(frozen=True)
class CostBreakdown:
    """Outlays by technique plus the scenario's penalties."""

    outlays_by_technique: "Dict[str, float]"
    outage_penalty: float
    loss_penalty: float

    @property
    def total_outlays(self) -> float:
        """Annualized outlay dollars summed over all techniques."""
        return sum(self.outlays_by_technique.values())

    @property
    def total_penalties(self) -> float:
        """This failure event's outage plus loss penalties."""
        return self.outage_penalty + self.loss_penalty

    @property
    def total_cost(self) -> float:
        """The paper's overall cost metric: outlays plus penalties."""
        return self.total_outlays + self.total_penalties

    def describe(self) -> str:
        """One-line rendering for logs and summaries."""
        parts = [
            f"outlays {format_money(self.total_outlays)}",
            f"penalties {format_money(self.total_penalties)}",
            f"total {format_money(self.total_cost)}",
        ]
        return ", ".join(parts)


def compute_outlays(design: StorageDesign) -> "Dict[str, float]":
    """Annualized outlay dollars per technique for the whole design.

    Demands must already be registered.  The shared recovery facility,
    when present, charges its discount fraction of every primary-site
    storage device's base outlay (it must be able to stand in for all of
    them) under the :data:`RECOVERY_FACILITY` key.
    """
    outlays: "Dict[str, float]" = {}
    for device in design.devices():
        for technique, dollars in device.outlays_by_technique().items():
            outlays[technique] = outlays.get(technique, 0.0) + dollars
    facility = design.recovery_facility
    if facility is not None and facility.exists and facility.discount > 0:
        primary_site = design.primary_level.store.location
        covered = [
            device
            for device in design.storage_devices()
            if device.location.same_site(primary_site)
        ]
        facility_cost = facility.discount * sum(
            device.cost_model.total_cost(
                capacity_bytes=device.capacity_demand_raw(),
                bandwidth_bps=device.bandwidth_demand(),
            )
            for device in covered
        )
        if facility_cost > 0:
            outlays[RECOVERY_FACILITY] = (
                outlays.get(RECOVERY_FACILITY, 0.0) + facility_cost
            )
    return outlays


def compute_costs(
    design: StorageDesign,
    requirements: BusinessRequirements,
    loss: Optional[DataLossResult] = None,
    plan: Optional[RecoveryPlan] = None,
) -> CostBreakdown:
    """Outlays plus the penalties of the evaluated failure scenario.

    Either result may be omitted (e.g. when only normal-mode costs are
    wanted); missing results contribute zero penalty.  A total-loss
    scenario has an unbounded loss penalty, represented as ``inf``.
    """
    tracer = get_tracer()
    with tracer.span("cost.compute", design=design.name) as span:
        outage_penalty = 0.0
        loss_penalty = 0.0
        if plan is not None:
            outage_penalty = requirements.outage_penalty(plan.recovery_time)
        if loss is not None:
            if loss.total_loss:
                loss_penalty = float("inf")
            else:
                loss_penalty = requirements.loss_penalty(loss.data_loss)
        breakdown = CostBreakdown(
            outlays_by_technique=compute_outlays(design),
            outage_penalty=outage_penalty,
            loss_penalty=loss_penalty,
        )
        span.set(
            outlays=breakdown.total_outlays,
            penalties=breakdown.total_penalties,
        )
        get_metrics().inc("cost.computations")
        return breakdown
