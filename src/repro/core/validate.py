"""Design-level validation of the paper's parameter conventions (§3.2.1).

Technique-local constraints (positive windows, ``propW <= accW``) are
enforced at construction; this module checks the *inter-level*
conventions:

1. lower (slower) levels retain at least as many RPs:
   ``retCnt_{i+1} >= retCnt_i``;
2. lower levels accumulate over at least a full cycle of the level
   above: ``accW_{i+1} >= cyclePer_i``;
3. a level's hold window should not exceed the next level's retention
   window, or it forces extra retention capacity on the devices
   providing the level (the vaulting extra-copy rule is the concrete
   instance).

Violations of 1–2 are structural errors; 3 is reported as a warning
(the framework models its capacity consequence rather than forbidding
it).  Workload-dependent checks are delegated to each technique's
``validate``.

The checks themselves live in :mod:`repro.lint.rules` as rules
``DEP001``–``DEP003`` (plus ``DEP013`` for the structural ones);
:func:`validate_design` is a thin adapter that renders their
diagnostics back to this module's historical string API.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..exceptions import DesignError, ReproError
from ..lint.diagnostics import Diagnostic, Severity
from ..lint.registry import RuleContext, run_rules
from ..lint.rules import cycle_period_of, retention_count_of  # noqa: F401
from ..workload.spec import Workload
from .hierarchy import StorageDesign

#: The rules validate_design adapts over, and their historical report
#: order: structure first, then the §3.2.1 conventions per level.
_VALIDATE_CODES = ("DEP013", "DEP001", "DEP002", "DEP003")

_LEVEL_POINTER = re.compile(r"^/levels/(\d+)")


def _cycle_period(level) -> Optional[float]:
    """A level's cycle period, or None for continuous techniques."""
    return cycle_period_of(level)


def _retention_count(level) -> Optional[int]:
    return retention_count_of(level)


def _report_key(diagnostic: Diagnostic) -> "Tuple[int, int, str]":
    """Historical report order: structure first, then by level, by check."""
    match = _LEVEL_POINTER.match(diagnostic.pointer)
    level = int(match.group(1)) if match else -1
    return (0 if diagnostic.code == "DEP013" else 1, level, diagnostic.code)


def validate_design(
    design: StorageDesign,
    workload: Optional[Workload] = None,
    strict: bool = True,
) -> List[str]:
    """Check the design's structure and conventions.

    Returns the list of warnings; raises
    :class:`~repro.exceptions.DesignError` on hard violations when
    ``strict`` (the default).
    """
    context = RuleContext(design=design, workload=workload)
    diagnostics = sorted(
        run_rules(context, codes=_VALIDATE_CODES), key=_report_key
    )
    warnings = [
        d.message for d in diagnostics if d.severity is not Severity.ERROR
    ]
    errors = [
        d.message for d in diagnostics if d.severity is Severity.ERROR
    ]

    if workload is not None:
        for level in design.levels:
            try:
                level.technique.validate(workload)
            # Reporting boundary: every modeling error a technique's
            # validate raises is a ReproError; all are collected so the
            # caller sees every level's problem in one report.  Anything
            # else is a programming mistake and must propagate.
            except ReproError as exc:
                errors.append(f"level {level.index}: {exc}")

    if errors and strict:
        raise DesignError(
            f"design {design.name!r} is invalid:\n  - " + "\n  - ".join(errors)
        )
    return warnings + errors
