"""Design-level validation of the paper's parameter conventions (§3.2.1).

Technique-local constraints (positive windows, ``propW <= accW``) are
enforced at construction; this module checks the *inter-level*
conventions:

1. lower (slower) levels retain at least as many RPs:
   ``retCnt_{i+1} >= retCnt_i``;
2. lower levels accumulate over at least a full cycle of the level
   above: ``accW_{i+1} >= cyclePer_i``;
3. a level's hold window should not exceed the next level's retention
   window, or it forces extra retention capacity on the devices
   providing the level (the vaulting extra-copy rule is the concrete
   instance).

Violations of 1–2 are structural errors; 3 is reported as a warning
(the framework models its capacity consequence rather than forbidding
it).  Workload-dependent checks are delegated to each technique's
``validate``.
"""

from __future__ import annotations

from typing import List, Optional

from ..exceptions import DesignError
from ..units import format_duration
from ..workload.spec import Workload
from .hierarchy import StorageDesign


def _cycle_period(level) -> Optional[float]:
    """A level's cycle period, or None for continuous techniques."""
    try:
        return level.technique.cycle().period
    except Exception:
        return None


def _retention_count(level) -> Optional[int]:
    try:
        return level.technique.cycle().retention_count
    except Exception:
        return None


def validate_design(
    design: StorageDesign,
    workload: Optional[Workload] = None,
    strict: bool = True,
) -> List[str]:
    """Check the design's structure and conventions.

    Returns the list of warnings; raises
    :class:`~repro.exceptions.DesignError` on hard violations when
    ``strict`` (the default).
    """
    warnings: "List[str]" = []
    errors: "List[str]" = []
    levels = design.levels
    if not levels:
        errors.append("design has no levels")
    elif not levels[0].technique.is_primary:
        errors.append("level 0 is not a primary copy")

    for current in levels[1:]:
        previous = design.parent_of(current)
        if previous.index == 0:
            continue  # conventions compare secondary levels to their feeders
        prev_ret = _retention_count(previous)
        curr_ret = _retention_count(current)
        if prev_ret is not None and curr_ret is not None and curr_ret < prev_ret:
            errors.append(
                f"level {current.index} ({current.technique.name}) retains "
                f"fewer cycles ({curr_ret}) than level {previous.index} "
                f"({previous.technique.name}, {prev_ret}): slower levels must "
                "retain at least as much (paper section 3.2.1)"
            )
        prev_period = _cycle_period(previous)
        curr_period = _cycle_period(current)
        if prev_period is not None and curr_period is not None:
            if curr_period < prev_period:
                errors.append(
                    f"level {current.index} ({current.technique.name}) "
                    f"accumulates over {format_duration(curr_period)}, shorter "
                    f"than level {previous.index}'s cycle period "
                    f"({format_duration(prev_period)}): accW_i+1 >= cyclePer_i "
                    "(paper section 3.2.1)"
                )
        # Convention 3: holdW of the propagating level vs. its own
        # source's retention (it must still be on the source when sent).
        hold = getattr(current.technique, "hold_window", None)
        if hold is not None and prev_ret is not None and prev_period is not None:
            source_retention = prev_ret * prev_period
            if hold > source_retention:
                warnings.append(
                    f"level {current.index} ({current.technique.name}) holds "
                    f"RPs {format_duration(hold)} before shipping, longer than "
                    f"level {previous.index}'s retention "
                    f"({format_duration(source_retention)}): extra retention "
                    "capacity is demanded from the source device"
                )

    if workload is not None:
        for level in levels:
            try:
                level.technique.validate(workload)
            except Exception as exc:  # surface per-technique problems together
                errors.append(f"level {level.index}: {exc}")

    if errors and strict:
        raise DesignError(
            f"design {design.name!r} is invalid:\n  - " + "\n  - ".join(errors)
        )
    return warnings + errors
