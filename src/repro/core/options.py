"""Recovery-source options: the loss-vs-time trade across levels.

The paper's composition picks the *closest* surviving level whose RP
range can serve the target (§3.3.3) — the loss-optimal choice, since
closer levels hold fresher RPs.  But operators sometimes prefer a
slower-to-lose, faster-to-restore source (restoring a small object from
a local snapshot vs. a remote mirror), and design reviews want to see
the whole trade.

:func:`recovery_options` enumerates *every* surviving level that can
serve the scenario, with its worst-case loss and full recovery plan, so
callers can choose loss-optimal (the paper's rule, first entry),
time-optimal, or anything between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..exceptions import RecoveryError
from ..scenarios.failures import FailureScenario
from ..workload.spec import Workload
from .dataloss import DataLossResult, _loss_for_level, level_range
from .hierarchy import Level, StorageDesign
from .recovery import RecoveryPlan, plan_recovery


@dataclass(frozen=True)
class RecoveryOption:
    """One candidate recovery source with its loss and plan."""

    level: Level
    data_loss: float
    plan: RecoveryPlan

    @property
    def source_name(self) -> str:
        """The candidate source technique's display name."""
        return self.level.technique.name

    @property
    def recovery_time(self) -> float:
        """Worst-case recovery time restoring from this source."""
        return self.plan.recovery_time


def recovery_options(
    design: StorageDesign,
    scenario: FailureScenario,
    workload: Workload,
) -> "List[RecoveryOption]":
    """All viable recovery sources, closest (loss-optimal) first.

    Demands must already be registered.  Levels whose retention has
    expired past the target, or for which no recovery path exists, are
    omitted; an empty list means the scenario is a total loss.
    """
    options: "List[RecoveryOption]" = []
    survivors = design.surviving_levels(scenario)
    ranges = tuple(level_range(design, level) for level in survivors)
    for level in survivors:
        loss = _loss_for_level(design, level, scenario.recovery_target_age)
        if loss is None:
            continue
        loss_result = DataLossResult(
            source_level=level,
            data_loss=loss,
            total_loss=False,
            target_age=scenario.recovery_target_age,
            ranges=ranges,
        )
        try:
            plan = plan_recovery(design, scenario, workload, loss_result=loss_result)
        except RecoveryError:
            continue
        options.append(RecoveryOption(level=level, data_loss=loss, plan=plan))
    return options


def time_optimal_option(
    design: StorageDesign,
    scenario: FailureScenario,
    workload: Workload,
) -> Optional[RecoveryOption]:
    """The fastest-restoring viable source (ties break toward less loss).

    Returns ``None`` when nothing can serve the scenario.
    """
    options = recovery_options(design, scenario, workload)
    if not options:
        return None
    return min(options, key=lambda option: (option.recovery_time, option.data_loss))
