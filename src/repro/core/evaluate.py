"""The one-call evaluation entry point.

:func:`evaluate` runs the whole pipeline for one design, workload,
failure scenario and set of business requirements:

1. validate the design against the paper's conventions;
2. register all workload demands on the devices;
3. compute normal-mode utilization (raising on over-commitment);
4. pick the recovery source and worst-case recent data loss;
5. build the recovery plan and its worst-case recovery time;
6. price outlays and penalties.

:func:`evaluate_scenarios` amortizes steps 1–3 across several scenarios
(the case study evaluates object / array / site failures of one design).

Every step emits spans and metrics through :mod:`repro.obs` (no-ops
unless a tracer/registry is installed), and each returned
:class:`~repro.core.results.Assessment` carries an
:class:`~repro.obs.provenance.EvaluationProvenance` recording the
decisions made along the way — including recovery-planning failures,
which used to be swallowed silently.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

from ..exceptions import RecoveryError
from ..obs import get_metrics, get_tracer
from ..obs.provenance import EvaluationProvenance
from ..scenarios.failures import FailureScenario
from ..scenarios.requirements import BusinessRequirements
from ..workload.spec import Workload
from .cost import compute_costs
from .dataloss import compute_data_loss
from .demands import register_design_demands
from .hierarchy import StorageDesign
from .recovery import RecoveryPlan, plan_recovery
from .results import Assessment
from .utilization import SystemUtilization, compute_utilization
from .validate import validate_design


def _utilization_driver(utilization: SystemUtilization) -> str:
    """Which device and dimension set the headline utilization."""
    if utilization.max_bandwidth_utilization >= utilization.max_capacity_utilization:
        return f"bandwidth of {utilization.max_bandwidth_device}"
    return f"capacity of {utilization.max_capacity_device}"


def _prepare(
    design: StorageDesign,
    workload: Workload,
    strict_utilization: bool,
) -> "Tuple[SystemUtilization, List[str], Dict[str, float]]":
    """Shared steps 1–3: validate, register demands, utilization.

    Returns the utilization, the validation warnings and (when tracing)
    the per-phase wall-clock timings in milliseconds.
    """
    tracer = get_tracer()
    timed = tracer.enabled
    phase_ms: "Dict[str, float]" = {}

    with tracer.span("validate", design=design.name):
        if timed:
            t0 = perf_counter()
        warnings = validate_design(design, workload, strict=True)
        if timed:
            phase_ms["validate"] = (perf_counter() - t0) * 1e3
    with tracer.span("demands", design=design.name):
        if timed:
            t0 = perf_counter()
        register_design_demands(design, workload)
        if timed:
            phase_ms["demands"] = (perf_counter() - t0) * 1e3
    if timed:
        t0 = perf_counter()
    utilization = compute_utilization(design, strict=strict_utilization)
    if timed:
        phase_ms["utilization"] = (perf_counter() - t0) * 1e3
    return utilization, warnings, phase_ms


def _assess(
    design: StorageDesign,
    workload: Workload,
    scenario: FailureScenario,
    requirements: BusinessRequirements,
    utilization: SystemUtilization,
    validation_warnings: "Iterable[str]" = (),
    shared_phase_ms: "Optional[Dict[str, float]]" = None,
) -> Assessment:
    """Steps 4–6 for one scenario, given the shared normal-mode state."""
    tracer = get_tracer()
    metrics = get_metrics()
    timed = tracer.enabled
    phase_ms: "Dict[str, float]" = dict(shared_phase_ms or {})
    metrics.inc("evaluate.assessments")

    with tracer.span("assess", scenario=scenario.describe()) as span:
        if timed:
            t0 = perf_counter()
        loss = compute_data_loss(design, scenario, allow_total_loss=True)
        if timed:
            phase_ms["dataloss"] = (perf_counter() - t0) * 1e3

        plan: Optional[RecoveryPlan] = None
        recovery_failure: Optional[str] = None
        if loss.total_loss:
            metrics.inc("recovery.total_loss")
            recovery_failure = (
                "total loss: no surviving level retains a usable RP"
            )
        else:
            if timed:
                t0 = perf_counter()
            try:
                plan = plan_recovery(design, scenario, workload, loss_result=loss)
            except RecoveryError as exc:
                # Record the failure instead of dropping it on the floor:
                # the assessment's unbounded recovery time stays explainable.
                metrics.inc("recovery.plan_failed")
                recovery_failure = str(exc)
            if timed:
                phase_ms["recovery"] = (perf_counter() - t0) * 1e3

        if timed:
            t0 = perf_counter()
        costs = compute_costs(design, requirements, loss=loss, plan=plan)
        if timed:
            phase_ms["cost"] = (perf_counter() - t0) * 1e3

        span.set(
            source=loss.source_name,
            total_loss=loss.total_loss,
            recovery_planned=plan is not None,
        )

    decisions: "List[str]" = []
    if loss.source_level is not None:
        decisions.append(
            f"recovery source: {loss.source_name} "
            f"(level {loss.source_level.index})"
        )
    else:
        decisions.append("no usable recovery source: total loss")
    if recovery_failure is not None:
        decisions.append(f"recovery planning failed: {recovery_failure}")
    dominant_outlay = (
        max(costs.outlays_by_technique, key=costs.outlays_by_technique.get)
        if costs.outlays_by_technique
        else None
    )
    if costs.total_penalties > 0:
        dominant_penalty = (
            "loss" if costs.loss_penalty > costs.outage_penalty else "outage"
        )
        decisions.append(f"dominant penalty term: {dominant_penalty}")
    else:
        dominant_penalty = None
    if dominant_outlay is not None:
        decisions.append(f"dominant outlay: {dominant_outlay}")
    warnings = tuple(validation_warnings)
    if warnings:
        decisions.append(f"{len(warnings)} validation warning(s)")

    provenance = EvaluationProvenance(
        design_name=design.name,
        scenario=scenario.describe(),
        scenario_scope=scenario.scope.value,
        recovery_target_age=scenario.recovery_target_age,
        recovery_size=None if plan is None else plan.recovery_size,
        validation_warnings=warnings,
        recovery_source=None if loss.source_level is None else loss.source_name,
        recovery_source_level=(
            None if loss.source_level is None else loss.source_level.index
        ),
        recovery_failure=recovery_failure,
        total_loss=loss.total_loss,
        utilization_driver=_utilization_driver(utilization),
        dominant_outlay=dominant_outlay,
        dominant_penalty=dominant_penalty,
        phase_ms=phase_ms,
        decisions=tuple(decisions),
    )
    return Assessment(
        design_name=design.name,
        scenario=scenario,
        requirements=requirements,
        utilization=utilization,
        data_loss=loss,
        recovery=plan,
        costs=costs,
        provenance=provenance,
    )


def evaluate(
    design: StorageDesign,
    workload: Workload,
    scenario: FailureScenario,
    requirements: BusinessRequirements,
    strict_utilization: bool = True,
) -> Assessment:
    """Evaluate one design against one failure scenario."""
    tracer = get_tracer()
    get_metrics().inc("evaluate.calls")
    with tracer.span(
        "evaluate", design=design.name, scenario=scenario.describe()
    ):
        utilization, warnings, phase_ms = _prepare(
            design, workload, strict_utilization
        )
        return _assess(
            design,
            workload,
            scenario,
            requirements,
            utilization,
            validation_warnings=warnings,
            shared_phase_ms=phase_ms,
        )


def evaluate_scenarios(
    design: StorageDesign,
    workload: Workload,
    scenarios: Iterable[FailureScenario],
    requirements: BusinessRequirements,
    strict_utilization: bool = True,
) -> "Dict[str, Assessment]":
    """Evaluate one design against several scenarios.

    Returns ``{scenario description: assessment}`` in input order.
    Validation, demand registration and utilization run once.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    metrics.inc("evaluate.calls")
    with tracer.span("evaluate_scenarios", design=design.name):
        utilization, warnings, phase_ms = _prepare(
            design, workload, strict_utilization
        )
        results: "Dict[str, Assessment]" = {}
        for scenario in scenarios:
            metrics.inc("evaluate.scenarios")
            results[scenario.describe()] = _assess(
                design,
                workload,
                scenario,
                requirements,
                utilization,
                validation_warnings=warnings,
                shared_phase_ms=phase_ms,
            )
        return results
