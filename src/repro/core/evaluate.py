"""The one-call evaluation entry point.

:func:`evaluate` runs the whole pipeline for one design, workload,
failure scenario and set of business requirements:

1. validate the design against the paper's conventions;
2. register all workload demands on the devices;
3. compute normal-mode utilization (raising on over-commitment);
4. pick the recovery source and worst-case recent data loss;
5. build the recovery plan and its worst-case recovery time;
6. price outlays and penalties.

:func:`evaluate_scenarios` amortizes steps 1–3 across several scenarios
(the case study evaluates object / array / site failures of one design).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..exceptions import RecoveryError
from ..scenarios.failures import FailureScenario
from ..scenarios.requirements import BusinessRequirements
from ..workload.spec import Workload
from .cost import compute_costs
from .dataloss import compute_data_loss
from .demands import register_design_demands
from .hierarchy import StorageDesign
from .recovery import RecoveryPlan, plan_recovery
from .results import Assessment
from .utilization import SystemUtilization, compute_utilization
from .validate import validate_design


def _assess(
    design: StorageDesign,
    workload: Workload,
    scenario: FailureScenario,
    requirements: BusinessRequirements,
    utilization: SystemUtilization,
) -> Assessment:
    """Steps 4–6 for one scenario, given the shared normal-mode state."""
    loss = compute_data_loss(design, scenario, allow_total_loss=True)
    plan: Optional[RecoveryPlan]
    if loss.total_loss:
        plan = None
    else:
        try:
            plan = plan_recovery(design, scenario, workload, loss_result=loss)
        except RecoveryError:
            plan = None
    costs = compute_costs(design, requirements, loss=loss, plan=plan)
    return Assessment(
        design_name=design.name,
        scenario=scenario,
        requirements=requirements,
        utilization=utilization,
        data_loss=loss,
        recovery=plan,
        costs=costs,
    )


def evaluate(
    design: StorageDesign,
    workload: Workload,
    scenario: FailureScenario,
    requirements: BusinessRequirements,
    strict_utilization: bool = True,
) -> Assessment:
    """Evaluate one design against one failure scenario."""
    validate_design(design, workload, strict=True)
    register_design_demands(design, workload)
    utilization = compute_utilization(design, strict=strict_utilization)
    return _assess(design, workload, scenario, requirements, utilization)


def evaluate_scenarios(
    design: StorageDesign,
    workload: Workload,
    scenarios: Iterable[FailureScenario],
    requirements: BusinessRequirements,
    strict_utilization: bool = True,
) -> "Dict[str, Assessment]":
    """Evaluate one design against several scenarios.

    Returns ``{scenario description: assessment}`` in input order.
    Validation, demand registration and utilization run once.
    """
    validate_design(design, workload, strict=True)
    register_design_demands(design, workload)
    utilization = compute_utilization(design, strict=strict_utilization)
    return {
        scenario.describe(): _assess(
            design, workload, scenario, requirements, utilization
        )
        for scenario in scenarios
    }
