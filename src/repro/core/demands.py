"""Registering a design's workload demands on its devices.

Walks the hierarchy in level order, handing each technique the devices
of its level plus the previous level's store (for propagation reads) and
technique (for retention-window interactions such as vaulting's
extra-copy rule).  Clearing first makes the operation idempotent, so a
design can be re-evaluated with different workloads.
"""

from __future__ import annotations

from ..workload.spec import Workload
from .hierarchy import StorageDesign


def register_design_demands(
    design: StorageDesign, workload: Workload, clear: bool = True
) -> None:
    """(Re)register every level's demands for the given workload.

    ``clear=False`` accumulates on top of existing demands — used by the
    portfolio evaluator when several objects' designs share devices (the
    caller clears each shared device exactly once up front).
    """
    if clear:
        for device in design.devices():
            device.clear_demands()
    for level in design.levels:
        if level.index == 0:
            level.technique.register_demands(workload, store=level.store)
            continue
        parent = design.parent_of(level)
        level.technique.register_demands(
            workload,
            store=level.store,
            source_store=parent.store,
            transport=level.transport,
            source_technique=parent.technique,
        )
