"""Synthetic bursty workload trace generation.

The paper characterizes the *cello* workgroup file server, an HP
internal trace we cannot redistribute.  Per the substitution policy in
DESIGN.md, this module generates a synthetic trace whose measured
characterization exhibits the same qualitative structure as Table 2:

* a mean update rate below the mean access rate,
* bursty arrivals (peak/mean ratio around the configured multiplier),
* a batch update rate that *declines* as the window grows, because
  writes concentrate on a hot subset of blocks and overwrites coalesce.

The generator uses an on/off modulated arrival process for burstiness
and a two-tier (hot/cold) block popularity model for overwrite locality.
Both are deliberately simple, reproducible (seeded), and fast (numpy,
column-wise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..exceptions import WorkloadError
from ..units import DAY, GB, HOUR, KB, MINUTE, SECOND
from .traces import Trace


@dataclass(frozen=True)
class SyntheticWorkloadConfig:
    """Knobs for the synthetic trace generator.

    Parameters
    ----------
    data_capacity:
        Size of the simulated data object, bytes.
    duration:
        Trace length, seconds.
    avg_access_rate / avg_update_rate:
        Target mean rates, bytes/s.  Updates are a subset of accesses.
    burst_multiplier:
        Target peak/mean update rate ratio; implemented as an on/off
        arrival process whose "on" rate is this multiple of the mean.
    hot_fraction:
        Fraction of blocks that form the write-hot set.
    hot_weight:
        Fraction of writes that land on the hot set (>= hot_fraction for
        skew).  High values make overwrites coalesce strongly, driving
        the long-window batch update rate down — cello-like behaviour.
    io_size:
        Bytes per I/O request (block-aligned).
    block_size:
        Uniqueness granularity; must divide io_size.
    """

    data_capacity: float = 64 * GB
    duration: float = 4 * HOUR
    avg_access_rate: float = 1028 * KB / SECOND
    avg_update_rate: float = 799 * KB / SECOND
    burst_multiplier: float = 10.0
    hot_fraction: float = 0.02
    hot_weight: float = 0.85
    io_size: int = 8192
    block_size: int = 8192
    burst_period: float = 10 * MINUTE
    #: Day/night swing of the update rate, in [0, 1): 0 is flat, 0.8
    #: means the overnight trough runs at 20% of the daily peak-hour
    #: mean.  Business workloads (and the paper's 12 h / weekend backup
    #: windows) are built around this shape.
    diurnal_amplitude: float = 0.0
    #: Length of the diurnal cycle; a day, unless compressed for tests.
    diurnal_period: float = DAY

    def validate(self) -> None:
        """Raise :class:`WorkloadError` if the configuration is inconsistent."""
        if self.data_capacity <= 0 or self.duration <= 0:
            raise WorkloadError("capacity and duration must be positive")
        if self.avg_update_rate > self.avg_access_rate:
            raise WorkloadError("update rate cannot exceed access rate")
        if self.burst_multiplier < 1:
            raise WorkloadError("burst multiplier must be >= 1")
        if not 0 < self.hot_fraction < 1:
            raise WorkloadError("hot_fraction must be in (0, 1)")
        if not self.hot_fraction <= self.hot_weight <= 1:
            raise WorkloadError("hot_weight must be in [hot_fraction, 1]")
        if self.io_size % self.block_size != 0:
            raise WorkloadError("io_size must be a multiple of block_size")
        if self.io_size > self.data_capacity:
            raise WorkloadError("io_size cannot exceed the data capacity")
        if self.burst_period <= 0:
            raise WorkloadError("burst_period must be positive")
        if not 0 <= self.diurnal_amplitude < 1:
            raise WorkloadError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise WorkloadError("diurnal_period must be positive")


def _diurnal_factor(
    time: float, amplitude: float, period: float
) -> float:
    """Sinusoidal day/night modulation with mean 1.0.

    ``1 + amplitude * sin(...)`` peaks mid-"day" and troughs
    mid-"night"; amplitude 0 is flat.
    """
    if amplitude == 0:
        return 1.0
    import math

    return 1.0 + amplitude * math.sin(2.0 * math.pi * time / period)


def _on_off_timestamps(
    rng: np.random.Generator,
    mean_rate_ios: float,
    duration: float,
    burst_multiplier: float,
    burst_period: float,
    diurnal_amplitude: float = 0.0,
    diurnal_period: float = DAY,
) -> np.ndarray:
    """Arrival times from an on/off modulated Poisson process.

    During "on" sub-periods the instantaneous rate is ``burst_multiplier``
    times the (diurnally modulated) mean; "off" sub-periods are silent.
    The duty cycle ``1/burst_multiplier`` keeps the long-run mean at
    ``mean_rate_ios`` (the sinusoidal modulation has mean 1).
    """
    if mean_rate_ios <= 0:
        return np.zeros(0)
    duty_cycle = 1.0 / burst_multiplier
    timestamps: "List[np.ndarray]" = []
    period_start = 0.0
    while period_start < duration:
        local_mean = mean_rate_ios * _diurnal_factor(
            period_start + burst_period / 2, diurnal_amplitude, diurnal_period
        )
        on_rate = local_mean * burst_multiplier
        on_length = duty_cycle * burst_period
        n_expected = on_rate * on_length
        n_arrivals = rng.poisson(n_expected)
        if n_arrivals:
            arrivals = period_start + rng.uniform(0.0, on_length, size=n_arrivals)
            timestamps.append(arrivals)
        period_start += burst_period
    if not timestamps:
        return np.zeros(0)
    merged = np.concatenate(timestamps)
    merged.sort()
    return merged[merged < duration]


def _draw_write_blocks(
    rng: np.random.Generator,
    count: int,
    n_blocks: int,
    hot_fraction: float,
    hot_weight: float,
) -> np.ndarray:
    """Block indices for writes: hot-set skew drives overwrite coalescing."""
    n_hot = max(1, int(n_blocks * hot_fraction))
    is_hot = rng.random(count) < hot_weight
    blocks = np.empty(count, dtype=np.int64)
    n_hot_draws = int(is_hot.sum())
    blocks[is_hot] = rng.integers(0, n_hot, size=n_hot_draws)
    blocks[~is_hot] = rng.integers(n_hot, n_blocks, size=count - n_hot_draws)
    return blocks


def generate_trace(config: SyntheticWorkloadConfig, seed: int = 0) -> Trace:
    """Generate a reproducible synthetic trace for the configuration.

    Reads are spread uniformly over the object; writes are skewed toward
    the hot set.  All accesses are ``io_size`` bytes, block-aligned.
    """
    config.validate()
    rng = np.random.default_rng(seed)
    n_blocks = int(config.data_capacity // config.block_size)
    blocks_per_io = config.io_size // config.block_size
    n_io_slots = max(1, n_blocks // blocks_per_io)

    write_rate_ios = config.avg_update_rate / config.io_size
    read_rate_ios = (config.avg_access_rate - config.avg_update_rate) / config.io_size

    write_times = _on_off_timestamps(
        rng, write_rate_ios, config.duration, config.burst_multiplier,
        config.burst_period, config.diurnal_amplitude, config.diurnal_period,
    )
    # Reads are modeled as smooth (Poisson): the paper's burstiness
    # parameter describes the *update* stream, which is what the data
    # protection techniques consume.
    n_reads = rng.poisson(read_rate_ios * config.duration)
    read_times = np.sort(rng.uniform(0.0, config.duration, size=n_reads))

    write_blocks = _draw_write_blocks(
        rng, len(write_times), n_io_slots, config.hot_fraction, config.hot_weight
    )
    read_blocks = rng.integers(0, n_io_slots, size=len(read_times))

    timestamps = np.concatenate([write_times, read_times])
    offsets = np.concatenate([write_blocks, read_blocks]) * config.io_size
    is_write = np.concatenate(
        [np.ones(len(write_times), dtype=bool), np.zeros(len(read_times), dtype=bool)]
    )
    order = np.argsort(timestamps, kind="stable")
    sizes = np.full(len(timestamps), config.io_size, dtype=np.int64)

    return Trace(
        timestamps=timestamps[order],
        offsets=offsets[order],
        sizes=sizes,
        is_write=is_write[order],
        data_capacity=config.data_capacity,
        block_size=config.block_size,
    )
