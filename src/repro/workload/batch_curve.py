"""The batch update rate curve: ``batchUpdR(win)`` from the paper's Table 1.

Data protection techniques that propagate *batches* of updates (batched
asynchronous mirroring, incremental backup, split-mirror resilvering)
only need to move the **unique** bytes updated within their accumulation
window: overwrites of the same block coalesce.  The batch update rate for
a window ``w`` is the number of unique bytes updated in a window of
length ``w``, divided by ``w``.  Because overwrites coalesce more as the
window grows, the *rate* is non-increasing in the window length while
the unique *byte count* is non-decreasing.

Workload measurement yields the rate at a handful of sample windows (the
paper's Table 2 samples 1 min, 12 h, 24 h, 48 h and 1 week).  Policies,
however, need the rate at arbitrary windows (e.g. the split-mirror
resilver window of five accumulation windows = 60 h).
:class:`BatchUpdateCurve` interpolates the unique-byte count linearly
between sample windows, which preserves both monotonicity properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Tuple, Union

from ..exceptions import WorkloadError
from ..units import parse_duration, parse_rate


def _normalize_points(
    points: Mapping[Union[str, float], Union[str, float]],
) -> "Tuple[Tuple[float, float], ...]":
    """Convert a ``{window: rate}`` mapping into sorted (window, rate) pairs."""
    normalized: "List[Tuple[float, float]]" = []
    for window, rate in points.items():
        window_s = parse_duration(window)
        rate_bps = parse_rate(rate)
        if window_s <= 0:
            raise WorkloadError(f"batch curve window must be positive, got {window!r}")
        if rate_bps < 0:
            raise WorkloadError(f"batch update rate must be >= 0, got {rate!r}")
        normalized.append((window_s, rate_bps))
    normalized.sort()
    windows = [w for w, _ in normalized]
    if len(set(windows)) != len(windows):
        raise WorkloadError("batch curve contains duplicate windows")
    return tuple(normalized)


@dataclass(frozen=True)
class BatchUpdateCurve:
    """Unique update rate as a function of the accumulation window.

    Parameters
    ----------
    points:
        Mapping from window length to measured unique update rate within
        that window.  Keys and values may be numbers (seconds, bytes/s)
        or strings in the paper's vocabulary (``"12 hr"``, ``"350 KB/s"``).
    short_window_rate:
        The unique update rate for windows shorter than the smallest
        sample.  For a vanishingly small window no overwrite coalescing
        is possible, so this is typically the average update rate.  If
        omitted, the rate of the smallest sample window is used.

    Examples
    --------
    >>> curve = BatchUpdateCurve({"1 min": "727 KB/s", "12 hr": "350 KB/s"})
    >>> curve.rate("12 hr") == 350 * 1024
    True
    """

    points: "Tuple[Tuple[float, float], ...]"
    short_window_rate: float = field(default=0.0)

    def __init__(
        self,
        points: Mapping[Union[str, float], Union[str, float]],
        short_window_rate: Union[str, float, None] = None,
    ) -> None:
        normalized = _normalize_points(points)
        if not normalized:
            raise WorkloadError("batch curve requires at least one sample point")
        if short_window_rate is None:
            short_rate = normalized[0][1]
        else:
            short_rate = parse_rate(short_window_rate)
        if short_rate < normalized[0][1]:
            raise WorkloadError(
                "short_window_rate must be at least the rate of the smallest "
                "sample window (rates are non-increasing in the window)"
            )
        self._check_monotonicity(normalized)
        object.__setattr__(self, "points", normalized)
        object.__setattr__(self, "short_window_rate", short_rate)

    @staticmethod
    def _check_monotonicity(points: "Tuple[Tuple[float, float], ...]") -> None:
        """Unique bytes must be non-decreasing; the rate non-increasing."""
        previous_window, previous_rate = points[0]
        for window, rate in points[1:]:
            if rate > previous_rate * (1 + 1e-12):
                raise WorkloadError(
                    "batch update rate must be non-increasing in the window: "
                    f"rate at {window}s ({rate} B/s) exceeds rate at "
                    f"{previous_window}s ({previous_rate} B/s)"
                )
            if window * rate < previous_window * previous_rate * (1 - 1e-12):
                raise WorkloadError(
                    "unique updated bytes must be non-decreasing in the window: "
                    f"{window}s gives fewer unique bytes than {previous_window}s"
                )
            previous_window, previous_rate = window, rate

    # -- queries ------------------------------------------------------------

    def unique_bytes(self, window: Union[str, float]) -> float:
        """Unique bytes updated during a window of the given length.

        Linear interpolation in the (window, unique-bytes) domain between
        samples; linear in the short-window rate below the smallest
        sample; constant-rate extrapolation beyond the largest sample.
        """
        window_s = parse_duration(window)
        if window_s < 0:
            raise WorkloadError(f"window must be >= 0, got {window!r}")
        if window_s == 0:
            return 0.0
        smallest_window, smallest_rate = self.points[0]
        if window_s <= smallest_window:
            # Blend between "no coalescing" (short_window_rate) at window 0
            # and the measured smallest sample, staying monotonic.
            return min(
                self.short_window_rate * window_s,
                smallest_window * smallest_rate,
            )
        largest_window, largest_rate = self.points[-1]
        if window_s >= largest_window:
            # Beyond measurements: the working set has been fully covered,
            # so unique bytes keep accruing at the largest-window rate.
            return largest_rate * window_s
        for (w_lo, r_lo), (w_hi, r_hi) in zip(self.points, self.points[1:]):
            if w_lo <= window_s <= w_hi:
                bytes_lo = w_lo * r_lo
                bytes_hi = w_hi * r_hi
                fraction = (window_s - w_lo) / (w_hi - w_lo)
                return bytes_lo + fraction * (bytes_hi - bytes_lo)
        raise AssertionError("unreachable: window within sampled range not found")

    def rate(self, window: Union[str, float]) -> float:
        """Unique update rate (bytes/s) for the given window length."""
        window_s = parse_duration(window)
        if window_s <= 0:
            return self.short_window_rate
        return self.unique_bytes(window_s) / window_s

    # -- convenience --------------------------------------------------------

    def sample_windows(self) -> "Tuple[float, ...]":
        """The measured window lengths, ascending, in seconds."""
        return tuple(window for window, _ in self.points)

    def as_dict(self) -> "Dict[float, float]":
        """The curve's sample points as ``{window_seconds: rate_bps}``."""
        return dict(self.points)

    def scaled(self, factor: float) -> "BatchUpdateCurve":
        """A new curve with every rate multiplied by ``factor``.

        Useful for what-if scenarios that scale the update intensity of a
        measured workload without re-measuring it.
        """
        if factor < 0:
            raise WorkloadError(f"scale factor must be >= 0, got {factor}")
        return BatchUpdateCurve(
            {window: rate * factor for window, rate in self.points},
            short_window_rate=self.short_window_rate * factor,
        )

    def __iter__(self) -> "Iterator[Tuple[float, float]]":
        return iter(self.points)
