"""Ready-made workload descriptions.

:func:`cello` is the paper's Table 2 — the measured characteristics of
HP Labs' *cello* workgroup file server, used throughout the DSN'04 case
study.  The other presets are plausible enterprise workloads used by the
examples and the design-automation benches; they are not from the paper.
"""

from __future__ import annotations

from ..units import GB, KB, MB, SECOND
from .batch_curve import BatchUpdateCurve
from .spec import Workload


def cello() -> Workload:
    """The cello workgroup file server workload (paper Table 2).

    1360 GB of data, 1028 KB/s average access rate, 799 KB/s average
    update rate, 10x burstiness, and batch update rates of 727 KB/s at a
    1-minute window, 350 KB/s at 12 hours, and 317 KB/s at 24 hours,
    48 hours and 1 week.
    """
    return Workload(
        name="cello workgroup file server",
        data_capacity=1360 * GB,
        avg_access_rate=1028 * KB / SECOND,
        avg_update_rate=799 * KB / SECOND,
        burst_multiplier=10.0,
        batch_curve=BatchUpdateCurve(
            {
                "1 min": 727 * KB / SECOND,
                "12 hr": 350 * KB / SECOND,
                "24 hr": 317 * KB / SECOND,
                "48 hr": 317 * KB / SECOND,
                "1 wk": 317 * KB / SECOND,
            },
            short_window_rate=799 * KB / SECOND,
        ),
    )


def oltp_database() -> Workload:
    """A write-intensive OLTP database: small hot working set, heavy bursts.

    Used by examples and sensitivity benches; not from the paper.
    """
    return Workload(
        name="OLTP database",
        data_capacity=500 * GB,
        avg_access_rate=24 * MB / SECOND,
        avg_update_rate=8 * MB / SECOND,
        burst_multiplier=20.0,
        batch_curve=BatchUpdateCurve(
            {
                "1 min": 6 * MB / SECOND,
                "1 hr": 2 * MB / SECOND,
                "12 hr": 800 * KB / SECOND,
                "24 hr": 600 * KB / SECOND,
                "1 wk": 400 * KB / SECOND,
            },
            short_window_rate=8 * MB / SECOND,
        ),
    )


def web_server(data_capacity: float = 2048 * GB) -> Workload:
    """A read-mostly web/content server: large dataset, few updates.

    Used by examples and sensitivity benches; not from the paper.
    """
    return Workload(
        name="web content server",
        data_capacity=data_capacity,
        avg_access_rate=40 * MB / SECOND,
        avg_update_rate=512 * KB / SECOND,
        burst_multiplier=5.0,
        batch_curve=BatchUpdateCurve(
            {
                "1 min": 480 * KB / SECOND,
                "1 hr": 350 * KB / SECOND,
                "24 hr": 200 * KB / SECOND,
                "1 wk": 120 * KB / SECOND,
            },
            short_window_rate=512 * KB / SECOND,
        ),
    )
