"""Workload descriptions and characterization.

A :class:`~repro.workload.spec.Workload` captures the five parameters the
paper's Table 1 defines for the foreground workload: data capacity,
average access rate, average (non-unique) update rate, burstiness, and
the batch update rate curve (unique update rate within a window).

The sub-modules provide:

* :mod:`repro.workload.batch_curve` — the window -> unique-update-rate
  curve with interpolation between measured sample points;
* :mod:`repro.workload.spec` — the workload dataclass itself;
* :mod:`repro.workload.traces` — a lightweight I/O trace representation;
* :mod:`repro.workload.synthetic` — synthetic bursty trace generation
  (the substitute for the proprietary *cello* trace, see DESIGN.md);
* :mod:`repro.workload.characterize` — derive a :class:`Workload` from a
  trace by measuring rates, burstiness and unique update bytes;
* :mod:`repro.workload.presets` — ready-made workloads, including
  :func:`~repro.workload.presets.cello` (the paper's Table 2).
"""

from .batch_curve import BatchUpdateCurve
from .spec import Workload
from .traces import Trace, TraceRecord
from .synthetic import SyntheticWorkloadConfig, generate_trace
from .characterize import characterize_trace
from .presets import cello, oltp_database, web_server

__all__ = [
    "BatchUpdateCurve",
    "Workload",
    "Trace",
    "TraceRecord",
    "SyntheticWorkloadConfig",
    "generate_trace",
    "characterize_trace",
    "cello",
    "oltp_database",
    "web_server",
]
