"""The workload description consumed by the dependability models.

This is the paper's Table 1 "Model inputs: workload" block: data
capacity, average access rate, average update rate, burstiness and the
batch update rate curve.  The models deliberately consume only these
summary statistics — not a raw trace — which is what makes the analytic
framework fast enough to sit inside an automated design loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..exceptions import WorkloadError
from ..units import parse_rate, parse_size, format_rate, format_size
from .batch_curve import BatchUpdateCurve


@dataclass(frozen=True)
class Workload:
    """A single data object's workload, in the paper's Table 1 vocabulary.

    Parameters
    ----------
    name:
        Human-readable label used in reports.
    data_capacity:
        Size of the data object (``dataCap``), bytes or a string
        (``"1360 GB"``).
    avg_access_rate:
        Rate of read *and* write accesses (``avgAccessR``).
    avg_update_rate:
        Rate of (non-unique) updates (``avgUpdateR``); must not exceed
        the access rate, of which it is a component.
    burst_multiplier:
        Ratio of peak to average update rate (``burstM``).
    batch_curve:
        The unique-update-rate curve (``batchUpdR(win)``).

    Notes
    -----
    The paper models a single data object per evaluation ("we assume for
    simplicity a single data object and workload", section 3.1.1); multiple
    objects are evaluated by running the framework once per object.
    """

    name: str
    data_capacity: float
    avg_access_rate: float
    avg_update_rate: float
    burst_multiplier: float
    batch_curve: BatchUpdateCurve = field(repr=False)

    def __init__(
        self,
        name: str,
        data_capacity: Union[str, float],
        avg_access_rate: Union[str, float],
        avg_update_rate: Union[str, float],
        burst_multiplier: float,
        batch_curve: BatchUpdateCurve,
    ) -> None:
        capacity = parse_size(data_capacity)
        access_rate = parse_rate(avg_access_rate)
        update_rate = parse_rate(avg_update_rate)
        if capacity <= 0:
            raise WorkloadError(f"data capacity must be positive, got {data_capacity!r}")
        if access_rate < 0 or update_rate < 0:
            raise WorkloadError("access and update rates must be >= 0")
        if update_rate > access_rate:
            raise WorkloadError(
                f"average update rate ({format_rate(update_rate)}) cannot exceed "
                f"the average access rate ({format_rate(access_rate)}): updates "
                "are a subset of accesses"
            )
        if burst_multiplier < 1:
            raise WorkloadError(
                f"burst multiplier is peak/average and must be >= 1, "
                f"got {burst_multiplier}"
            )
        if not isinstance(batch_curve, BatchUpdateCurve):
            raise WorkloadError("batch_curve must be a BatchUpdateCurve")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "data_capacity", capacity)
        object.__setattr__(self, "avg_access_rate", access_rate)
        object.__setattr__(self, "avg_update_rate", update_rate)
        object.__setattr__(self, "burst_multiplier", burst_multiplier)
        object.__setattr__(self, "batch_curve", batch_curve)

    # -- derived quantities ---------------------------------------------------

    @property
    def peak_update_rate(self) -> float:
        """Peak (bursty) update rate: ``avgUpdateR * burstM``."""
        return self.avg_update_rate * self.burst_multiplier

    @property
    def avg_read_rate(self) -> float:
        """Read component of the access rate (accesses minus updates)."""
        return self.avg_access_rate - self.avg_update_rate

    def batch_update_rate(self, window: Union[str, float]) -> float:
        """``batchUpdR(win)``: unique update rate within the given window."""
        return self.batch_curve.rate(window)

    def unique_bytes(self, window: Union[str, float]) -> float:
        """Unique bytes updated during a window, capped by the dataset size.

        No window can touch more unique bytes than the object holds.
        """
        return min(self.batch_curve.unique_bytes(window), self.data_capacity)

    def update_fraction(self, window: Union[str, float]) -> float:
        """Fraction of the dataset uniquely updated within a window."""
        return self.unique_bytes(window) / self.data_capacity

    def full_coverage_window(self) -> float:
        """Window length after which unique updates would cover the dataset.

        Uses the largest-window rate for extrapolation; techniques use
        this to bound how stale a partial copy can get before a full
        re-copy is cheaper.
        """
        largest_window, largest_rate = self.batch_curve.points[-1]
        if largest_rate == 0:
            return float("inf")
        return max(largest_window, self.data_capacity / largest_rate)

    # -- transformations ------------------------------------------------------

    def with_capacity(self, data_capacity: Union[str, float]) -> "Workload":
        """A copy of this workload with a different dataset size."""
        return Workload(
            name=self.name,
            data_capacity=parse_size(data_capacity),
            avg_access_rate=self.avg_access_rate,
            avg_update_rate=self.avg_update_rate,
            burst_multiplier=self.burst_multiplier,
            batch_curve=self.batch_curve,
        )

    def scaled(self, factor: float) -> "Workload":
        """A copy with all rates (and the batch curve) scaled by ``factor``."""
        if factor <= 0:
            raise WorkloadError(f"scale factor must be positive, got {factor}")
        return Workload(
            name=f"{self.name} (x{factor:g})",
            data_capacity=self.data_capacity,
            avg_access_rate=self.avg_access_rate * factor,
            avg_update_rate=self.avg_update_rate * factor,
            burst_multiplier=self.burst_multiplier,
            batch_curve=self.batch_curve.scaled(factor),
        )

    def combined(self, other: "Workload", name: Optional[str] = None) -> "Workload":
        """The consolidation of two objects onto one store.

        Capacities and rates add; unique update bytes add too (the
        objects are disjoint, so no cross-object coalescing), giving a
        batch curve sampled at the union of both curves' windows.  The
        burst multiplier is the capacity-weighted... no — bursts of
        independent workloads do not align, so the combined peak is
        bounded by the sum of peaks and below by the larger: this model
        takes the conservative sum of peak rates over the summed average
        (peaks coincide in the worst case).
        """
        windows = sorted(
            set(self.batch_curve.sample_windows())
            | set(other.batch_curve.sample_windows())
        )
        points = {
            window: (
                self.batch_curve.unique_bytes(window)
                + other.batch_curve.unique_bytes(window)
            )
            / window
            for window in windows
        }
        combined_update = self.avg_update_rate + other.avg_update_rate
        combined_peak = self.peak_update_rate + other.peak_update_rate
        burst = combined_peak / combined_update if combined_update > 0 else 1.0
        return Workload(
            name=name or f"{self.name} + {other.name}",
            data_capacity=self.data_capacity + other.data_capacity,
            avg_access_rate=self.avg_access_rate + other.avg_access_rate,
            avg_update_rate=combined_update,
            burst_multiplier=max(burst, 1.0),
            batch_curve=BatchUpdateCurve(
                points,
                short_window_rate=self.batch_curve.short_window_rate
                + other.batch_curve.short_window_rate,
            ),
        )

    def describe(self) -> str:
        """One-line human-readable summary (used by reports and the CLI)."""
        return (
            f"{self.name}: {format_size(self.data_capacity)}, "
            f"access {format_rate(self.avg_access_rate)}, "
            f"update {format_rate(self.avg_update_rate)}, "
            f"burst {self.burst_multiplier:g}x"
        )
