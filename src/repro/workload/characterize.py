"""Derive a :class:`~repro.workload.spec.Workload` from an I/O trace.

This reproduces the measurement step the paper performed on the *cello*
server (Table 2): mean access and update rates, burstiness (peak-to-mean
update rate over one-minute intervals), and the batch update rate at a
set of windows.

For each requested window the unique-byte count is averaged over
consecutive non-overlapping windows covering the trace, which matches
the "unique update rate within a given window" definition while
smoothing sampling noise.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..exceptions import WorkloadError
from ..units import MINUTE, parse_duration
from .batch_curve import BatchUpdateCurve
from .spec import Workload
from .traces import Trace

DEFAULT_BURST_INTERVAL = MINUTE


def measure_batch_update_rate(trace: Trace, window: Union[str, float]) -> float:
    """Average unique update rate (bytes/s) within windows of this length.

    The trace is tiled with consecutive windows; partial trailing windows
    are ignored (they would bias the unique count downward).
    """
    window_s = parse_duration(window)
    if window_s <= 0:
        raise WorkloadError(f"window must be positive, got {window!r}")
    if window_s > trace.duration:
        raise WorkloadError(
            f"window ({window_s:.0f}s) exceeds trace duration "
            f"({trace.duration:.0f}s); measure with a longer trace"
        )
    n_windows = int(trace.duration // window_s)
    unique_totals = [
        trace.unique_written_bytes(i * window_s, (i + 1) * window_s)
        for i in range(n_windows)
    ]
    return float(np.mean(unique_totals)) / window_s


def measure_burstiness(
    trace: Trace, interval: Union[str, float] = DEFAULT_BURST_INTERVAL
) -> float:
    """Peak-to-mean write rate over fixed intervals (``burstM``).

    Returns 1.0 for traces with no writes (no burstiness to speak of).
    """
    interval_s = parse_duration(interval)
    rates = trace.rate_per_interval(interval_s, writes_only=True)
    if len(rates) == 0:
        return 1.0
    mean_rate = float(rates.mean())
    if mean_rate == 0:
        return 1.0
    return float(rates.max()) / mean_rate


def characterize_trace(
    trace: Trace,
    windows: Sequence[Union[str, float]],
    name: str = "measured",
    burst_interval: Union[str, float] = DEFAULT_BURST_INTERVAL,
    burst_multiplier: Optional[float] = None,
) -> Workload:
    """Measure a trace into the paper's workload parameters.

    Parameters
    ----------
    trace:
        The I/O trace to characterize.
    windows:
        Accumulation windows at which to sample the batch update curve
        (the paper uses 1 min, 12 hr, 24 hr, 48 hr and 1 week).
    name:
        Label for the resulting workload.
    burst_interval:
        Interval over which peak rates are measured (1 minute, following
        common practice).
    burst_multiplier:
        Override for the measured burstiness (useful when the trace is a
        short excerpt that does not capture the workload's true peaks).
    """
    if trace.duration <= 0 or len(trace) == 0:
        raise WorkloadError("cannot characterize an empty trace")
    if not windows:
        raise WorkloadError("at least one batch window is required")

    avg_access_rate = trace.total_bytes() / trace.duration
    avg_update_rate = trace.written_bytes() / trace.duration
    measured_burst = measure_burstiness(trace, burst_interval)
    points = {
        parse_duration(window): measure_batch_update_rate(trace, window)
        for window in windows
    }
    curve = BatchUpdateCurve(
        _enforce_monotone(points), short_window_rate=max(points.values()) or None
    )
    return Workload(
        name=name,
        data_capacity=trace.data_capacity,
        avg_access_rate=avg_access_rate,
        avg_update_rate=avg_update_rate,
        burst_multiplier=burst_multiplier if burst_multiplier is not None else measured_burst,
        batch_curve=curve,
    )


def _enforce_monotone(points: "dict[float, float]") -> "dict[float, float]":
    """Clean sampling noise so the curve invariants hold.

    Measured rates can wiggle slightly upward between adjacent windows
    due to window-phase effects; clamp each rate to be no larger than the
    previous (shorter) window's rate, and each unique-byte count to be at
    least the previous window's count.
    """
    cleaned: "dict[float, float]" = {}
    previous_window: Optional[float] = None
    previous_rate: Optional[float] = None
    for window in sorted(points):
        rate = points[window]
        if previous_window is not None and previous_rate is not None:
            rate = min(rate, previous_rate)
            min_bytes = previous_window * previous_rate
            rate = max(rate, min_bytes / window)
        cleaned[window] = rate
        previous_window, previous_rate = window, rate
    return cleaned
