"""A lightweight block-level I/O trace representation.

The analytic framework itself only consumes workload *statistics*
(:class:`~repro.workload.spec.Workload`), but deriving those statistics
from a trace — as the paper's authors did from the *cello* workgroup
server — is part of the workflow this library supports.  A
:class:`Trace` is an ordered sequence of :class:`TraceRecord` block
accesses; :mod:`repro.workload.characterize` turns it into a
:class:`~repro.workload.spec.Workload`.

Records are stored column-wise in numpy arrays so that week-long traces
with tens of millions of events remain tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from ..exceptions import WorkloadError


@dataclass(frozen=True)
class TraceRecord:
    """One block access: timestamp (s), byte offset, byte count, direction."""

    timestamp: float
    offset: int
    size: int
    is_write: bool

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise WorkloadError(f"timestamp must be >= 0, got {self.timestamp}")
        if self.offset < 0:
            raise WorkloadError(f"offset must be >= 0, got {self.offset}")
        if self.size <= 0:
            raise WorkloadError(f"size must be positive, got {self.size}")

    @property
    def end(self) -> int:
        """Byte offset one past the last byte touched."""
        return self.offset + self.size


class Trace:
    """An ordered collection of block accesses over a data object.

    Parameters
    ----------
    timestamps, offsets, sizes, is_write:
        Parallel arrays describing the accesses.  Timestamps must be
        non-decreasing.
    data_capacity:
        Size of the traced data object in bytes; accesses must fit.
    block_size:
        Granularity at which uniqueness is tracked (copy-on-write and
        batching operate on blocks, not bytes).
    """

    def __init__(
        self,
        timestamps: Sequence[float],
        offsets: Sequence[int],
        sizes: Sequence[int],
        is_write: Sequence[bool],
        data_capacity: float,
        block_size: int = 8192,
    ) -> None:
        self.timestamps = np.asarray(timestamps, dtype=np.float64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.sizes = np.asarray(sizes, dtype=np.int64)
        self.is_write = np.asarray(is_write, dtype=bool)
        lengths = {
            len(self.timestamps),
            len(self.offsets),
            len(self.sizes),
            len(self.is_write),
        }
        if len(lengths) != 1:
            raise WorkloadError("trace column arrays must have equal length")
        if data_capacity <= 0:
            raise WorkloadError(f"data capacity must be positive, got {data_capacity}")
        if block_size <= 0:
            raise WorkloadError(f"block size must be positive, got {block_size}")
        if len(self.timestamps) and np.any(np.diff(self.timestamps) < 0):
            raise WorkloadError("trace timestamps must be non-decreasing")
        if len(self.sizes) and np.any(self.sizes <= 0):
            raise WorkloadError("trace record sizes must be positive")
        if len(self.offsets) and (
            np.any(self.offsets < 0)
            or np.any(self.offsets + self.sizes > data_capacity)
        ):
            raise WorkloadError("trace accesses must lie within the data object")
        self.data_capacity = float(data_capacity)
        self.block_size = int(block_size)

    @classmethod
    def from_records(
        cls,
        records: Iterable[TraceRecord],
        data_capacity: float,
        block_size: int = 8192,
    ) -> "Trace":
        """Build a trace from an iterable of :class:`TraceRecord`."""
        materialized = list(records)
        return cls(
            timestamps=[r.timestamp for r in materialized],
            offsets=[r.offset for r in materialized],
            sizes=[r.size for r in materialized],
            is_write=[r.is_write for r in materialized],
            data_capacity=data_capacity,
            block_size=block_size,
        )

    # -- basic shape ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    def __iter__(self) -> Iterator[TraceRecord]:
        for i in range(len(self)):
            yield TraceRecord(
                timestamp=float(self.timestamps[i]),
                offset=int(self.offsets[i]),
                size=int(self.sizes[i]),
                is_write=bool(self.is_write[i]),
            )

    @property
    def duration(self) -> float:
        """Trace length in seconds (last timestamp; traces start at 0)."""
        if len(self) == 0:
            return 0.0
        return float(self.timestamps[-1])

    # -- aggregate statistics ---------------------------------------------------

    def total_bytes(self) -> float:
        """Total bytes accessed (reads + writes)."""
        return float(self.sizes.sum())

    def written_bytes(self) -> float:
        """Total bytes written (non-unique)."""
        return float(self.sizes[self.is_write].sum())

    def read_bytes(self) -> float:
        """Total bytes read."""
        return float(self.sizes[~self.is_write].sum())

    def write_blocks(self) -> np.ndarray:
        """Block index of each written record's first byte.

        Records are assumed block-aligned by the synthetic generator; for
        unaligned records the first block is a good proxy at the
        characterization granularity.
        """
        return self.offsets[self.is_write] // self.block_size

    def unique_written_bytes(self, start: float, end: float) -> float:
        """Unique bytes (block-granular) written within ``[start, end)``."""
        if end <= start:
            return 0.0
        lo = np.searchsorted(self.timestamps, start, side="left")
        hi = np.searchsorted(self.timestamps, end, side="left")
        mask = self.is_write[lo:hi]
        blocks = self.offsets[lo:hi][mask] // self.block_size
        return float(len(np.unique(blocks))) * self.block_size

    def slice(self, start: float, end: float) -> "Trace":
        """The sub-trace with timestamps in ``[start, end)``, re-zeroed."""
        lo = np.searchsorted(self.timestamps, start, side="left")
        hi = np.searchsorted(self.timestamps, end, side="left")
        return Trace(
            timestamps=self.timestamps[lo:hi] - start,
            offsets=self.offsets[lo:hi],
            sizes=self.sizes[lo:hi],
            is_write=self.is_write[lo:hi],
            data_capacity=self.data_capacity,
            block_size=self.block_size,
        )

    # -- persistence ------------------------------------------------------------

    def save_csv(self, path: str) -> None:
        """Write the trace as CSV: ``timestamp,offset,size,is_write``.

        A two-line header records the object capacity and block size so
        :meth:`load_csv` can round-trip the trace exactly.
        """
        with open(path, "w") as handle:
            handle.write(f"# data_capacity={self.data_capacity:.0f} "
                         f"block_size={self.block_size}\n")
            handle.write("timestamp,offset,size,is_write\n")
            for i in range(len(self)):
                handle.write(
                    f"{self.timestamps[i]:.6f},{self.offsets[i]},"
                    f"{self.sizes[i]},{int(self.is_write[i])}\n"
                )

    @classmethod
    def load_csv(cls, path: str) -> "Trace":
        """Read a trace written by :meth:`save_csv`."""
        with open(path) as handle:
            header = handle.readline().strip()
            if not header.startswith("#"):
                raise WorkloadError(
                    f"{path}: missing '# data_capacity=... block_size=...' header"
                )
            try:
                fields: "dict[str, str]" = {}
                for item in header.lstrip("# ").split():
                    key, _, value = item.partition("=")
                    fields[key] = value
                data_capacity = float(fields["data_capacity"])
                block_size = int(fields["block_size"])
            except (KeyError, ValueError) as exc:
                raise WorkloadError(f"{path}: malformed header: {exc}") from None
            column_line = handle.readline().strip()
            if column_line != "timestamp,offset,size,is_write":
                raise WorkloadError(f"{path}: unexpected column header")
            body = handle.read().strip()
        if not body:
            return cls([], [], [], [], data_capacity=data_capacity,
                       block_size=block_size)
        data = np.loadtxt(body.splitlines(), delimiter=",", ndmin=2)
        if data.size == 0:
            return cls([], [], [], [], data_capacity=data_capacity,
                       block_size=block_size)
        return cls(
            timestamps=data[:, 0],
            offsets=data[:, 1].astype(np.int64),
            sizes=data[:, 2].astype(np.int64),
            is_write=data[:, 3].astype(bool),
            data_capacity=data_capacity,
            block_size=block_size,
        )

    def rate_per_interval(self, interval: float, writes_only: bool = False) -> np.ndarray:
        """Access (or write) rate in bytes/s for consecutive intervals.

        Used for burstiness measurement: ``burstM`` is the peak interval
        rate over the mean interval rate.
        """
        if interval <= 0:
            raise WorkloadError(f"interval must be positive, got {interval}")
        if len(self) == 0:
            return np.zeros(0)
        mask = self.is_write if writes_only else np.ones(len(self), dtype=bool)
        bucket = (self.timestamps[mask] / interval).astype(np.int64)
        n_buckets = int(self.duration // interval) + 1
        sums = np.bincount(bucket, weights=self.sizes[mask], minlength=n_buckets)
        return sums / interval
