"""Discrete-event simulation of retrieval-point lifecycles.

The paper's analytic models give *worst-case* recovery time and recent
data loss.  Its future-work list includes validating those models
against measured behaviour and evaluating *degraded mode* operation
(running with a data protection technique out of service).  This
package provides both:

* :mod:`repro.simulation.engine` — a minimal discrete-event engine
  (heap-scheduled events, typed handlers);
* :mod:`repro.simulation.rp_store` — per-level retrieval-point
  bookkeeping: creation, availability, base-full dependencies, expiry;
* :mod:`repro.simulation.simulator` — drives a
  :class:`~repro.core.hierarchy.StorageDesign` through simulated time,
  injecting failures and measuring the *actual* data loss each failure
  would cause;
* :mod:`repro.simulation.failure_injection` — deterministic sweeps and
  seeded random failure-time generators;
* :mod:`repro.simulation.metrics` — loss-sample statistics (max, mean,
  percentiles) for comparison against the analytic bounds.

The key validation property: over any set of injected failure times,
the measured loss never exceeds the analytic worst case, and the
analytic worst case is *tight* (approached by adversarial failure
times).
"""

from .engine import Event, SimulationEngine
from .rp_store import RPStore, RetrievalPoint
from .simulator import DependabilitySimulator, SimulatedLoss
from .failure_injection import (
    adversarial_times,
    random_times,
    substream_rng,
    substream_seed,
    sweep_times,
)
from .metrics import LossStatistics, summarize_losses
from .recovery_sim import RecoverySimulator, SimulatedRecovery, TransferSpec
from .exposure import ExposurePoint, ExposureProfile, exposure_profile

__all__ = [
    "Event",
    "SimulationEngine",
    "RPStore",
    "RetrievalPoint",
    "DependabilitySimulator",
    "SimulatedLoss",
    "sweep_times",
    "random_times",
    "substream_rng",
    "substream_seed",
    "adversarial_times",
    "LossStatistics",
    "summarize_losses",
    "RecoverySimulator",
    "SimulatedRecovery",
    "TransferSpec",
    "ExposurePoint",
    "ExposureProfile",
    "exposure_profile",
]
