"""Failure-time generators for simulation campaigns.

Three flavors:

* :func:`sweep_times` — an even deterministic sweep across a window,
  for reproducible coverage of every cycle phase;
* :func:`random_times` — seeded uniform random times, for unbiased
  sampling of the loss distribution;
* :func:`adversarial_times` — times just before each RP of a level
  becomes usable, which is when the level is most stale.  Used to show
  the analytic worst case is *tight*, not merely safe.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import SimulationError
from .simulator import DependabilitySimulator


def sweep_times(start: float, end: float, count: int) -> "List[float]":
    """``count`` evenly spaced failure times across ``[start, end]``."""
    if count < 1:
        raise SimulationError("need at least one failure time")
    if end < start:
        raise SimulationError("sweep window is empty")
    if count == 1:
        return [start]
    return list(np.linspace(start, end, count))


def random_times(start: float, end: float, count: int, seed: int = 0) -> "List[float]":
    """``count`` seeded uniform random failure times in ``[start, end]``."""
    if count < 1:
        raise SimulationError("need at least one failure time")
    if end < start:
        raise SimulationError("window is empty")
    rng = np.random.default_rng(seed)
    return sorted(rng.uniform(start, end, size=count).tolist())


def adversarial_times(
    simulator: DependabilitySimulator,
    level_index: int,
    start: float,
    end: float,
    epsilon: float = 1.0,
) -> "List[float]":
    """Failure times ``epsilon`` before each RP of a level turns usable.

    Just before a new RP becomes available, the level's newest usable
    snapshot is as old as it ever gets — these instants realize the
    worst case.
    """
    simulator.build()
    store = simulator.stores.get(level_index)
    if store is None:
        raise SimulationError(f"no simulated store for level {level_index}")
    times = [
        point.available_at - epsilon
        for point in store.points
        if start <= point.available_at - epsilon <= end
    ]
    if not times:
        raise SimulationError(
            f"no availability transitions of level {level_index} in "
            f"[{start}, {end}]"
        )
    return sorted(times)
