"""Failure-time generators for simulation campaigns.

Three flavors:

* :func:`sweep_times` — an even deterministic sweep across a window,
  for reproducible coverage of every cycle phase;
* :func:`random_times` — seeded uniform random times, for unbiased
  sampling of the loss distribution;
* :func:`adversarial_times` — times just before each RP of a level
  becomes usable, which is when the level is most stale.  Used to show
  the analytic worst case is *tight*, not merely safe.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

import numpy as np

from ..exceptions import SimulationError
from .simulator import DependabilitySimulator


def substream_seed(root_seed: int, stream_id: str) -> int:
    """A derived 64-bit seed for one named substream of ``root_seed``.

    The derivation hashes ``(root_seed, stream_id)``, so every labelled
    consumer of one root seed gets a statistically independent stream
    whose identity does not depend on *when* (or in which process) it
    is drawn.  That is the property a parallel Monte Carlo campaign
    needs: each scenario samples from its own substream, so the results
    are byte-identical whether members are sampled serially, in a
    different order, or sharded across ``--workers N``.
    """
    digest = hashlib.sha256(
        f"{root_seed}:{stream_id}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def substream_rng(root_seed: int, stream_id: str) -> np.random.Generator:
    """A generator over the named substream of ``root_seed``."""
    return np.random.default_rng(
        np.random.SeedSequence(substream_seed(root_seed, stream_id))
    )


def sweep_times(start: float, end: float, count: int) -> "List[float]":
    """``count`` evenly spaced failure times across ``[start, end]``."""
    if count < 1:
        raise SimulationError("need at least one failure time")
    if end < start:
        raise SimulationError("sweep window is empty")
    if count == 1:
        return [start]
    return list(np.linspace(start, end, count))


def random_times(
    start: float,
    end: float,
    count: int,
    seed: int = 0,
    stream: "Optional[str]" = None,
) -> "List[float]":
    """``count`` seeded uniform random failure times in ``[start, end]``.

    With ``stream`` given, times are drawn from the named substream of
    ``seed`` (see :func:`substream_seed`): two scenarios of one
    campaign pass the same root seed and distinct stream labels, and
    each gets its own independent, order-insensitive sequence.  Without
    it, ``seed`` is used directly (the historical behaviour).
    """
    if count < 1:
        raise SimulationError("need at least one failure time")
    if end < start:
        raise SimulationError("window is empty")
    if stream is None:
        rng = np.random.default_rng(seed)
    else:
        rng = substream_rng(seed, stream)
    return sorted(rng.uniform(start, end, size=count).tolist())


def adversarial_times(
    simulator: DependabilitySimulator,
    level_index: int,
    start: float,
    end: float,
    epsilon: float = 1.0,
) -> "List[float]":
    """Failure times ``epsilon`` before each RP of a level turns usable.

    Just before a new RP becomes available, the level's newest usable
    snapshot is as old as it ever gets — these instants realize the
    worst case.
    """
    simulator.build()
    store = simulator.stores.get(level_index)
    if store is None:
        raise SimulationError(f"no simulated store for level {level_index}")
    times = [
        point.available_at - epsilon
        for point in store.points
        if start <= point.available_at - epsilon <= end
    ]
    if not times:
        raise SimulationError(
            f"no availability transitions of level {level_index} in "
            f"[{start}, {end}]"
        )
    return sorted(times)
