"""Statistics over simulated loss samples.

The validation story needs three numbers per campaign: the worst sample
(to compare against the analytic bound), the mean (to show how
pessimistic the worst case is on average), and a high percentile (the
operationally interesting tail).  :func:`summarize_losses` computes all
of them, excluding total-loss samples, which are counted separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..exceptions import SimulationError
from .simulator import SimulatedLoss


@dataclass(frozen=True)
class LossStatistics:
    """Summary of a failure-injection campaign's loss samples."""

    count: int
    total_loss_count: int
    max_loss: float
    mean_loss: float
    median_loss: float
    p95_loss: float

    def within_bound(self, analytic_bound: float, tolerance: float = 1e-6) -> bool:
        """Whether every finite sample respects the analytic worst case."""
        return self.max_loss <= analytic_bound + tolerance

    def tightness(self, analytic_bound: float) -> float:
        """max_sample / bound: 1.0 means the bound is achieved exactly."""
        if analytic_bound == 0:
            return 1.0 if self.max_loss == 0 else float("inf")
        return self.max_loss / analytic_bound


def summarize_losses(samples: Sequence[SimulatedLoss]) -> LossStatistics:
    """Aggregate a campaign's samples into :class:`LossStatistics`."""
    if not samples:
        raise SimulationError("no loss samples to summarize")
    finite: "List[float]" = [
        s.data_loss for s in samples if not s.total_loss
    ]
    total_losses = sum(1 for s in samples if s.total_loss)
    if not finite:
        return LossStatistics(
            count=len(samples),
            total_loss_count=total_losses,
            max_loss=float("inf"),
            mean_loss=float("inf"),
            median_loss=float("inf"),
            p95_loss=float("inf"),
        )
    array = np.asarray(finite)
    return LossStatistics(
        count=len(samples),
        total_loss_count=total_losses,
        max_loss=float(array.max()),
        mean_loss=float(array.mean()),
        median_loss=float(np.median(array)),
        p95_loss=float(np.percentile(array, 95)),
    )
