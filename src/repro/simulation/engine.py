"""A minimal discrete-event simulation engine.

Events are ``(time, sequence, Event)`` triples in a heap; handlers are
registered per event kind and may schedule further events.  The engine
is deliberately small — the RP lifecycle needs nothing more — but it is
a real engine: stable ordering for simultaneous events, run-until-time
semantics for probing state mid-simulation, and guard rails against
scheduling into the past.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..exceptions import SimulationError


@dataclass(frozen=True)
class Event:
    """A simulation event: a kind tag plus an arbitrary payload."""

    kind: str
    payload: Any = None


Handler = Callable[["SimulationEngine", Event], None]


class SimulationEngine:
    """Heap-scheduled discrete-event loop.

    Usage::

        engine = SimulationEngine()
        engine.on("tick", lambda eng, ev: eng.schedule(eng.now + 1, ev))
        engine.schedule(0.0, Event("tick"))
        engine.run_until(10.0)
    """

    def __init__(self):
        self._queue: "List[Tuple[float, int, Event]]" = []
        self._sequence = itertools.count()
        self._handlers: "Dict[str, List[Handler]]" = {}
        self.now = 0.0
        self.processed = 0

    # -- wiring -------------------------------------------------------------------

    def on(self, kind: str, handler: Handler) -> None:
        """Register a handler for an event kind (multiple allowed)."""
        self._handlers.setdefault(kind, []).append(handler)

    def schedule(self, time: float, event: Event) -> None:
        """Schedule an event; scheduling into the past is an error."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {event.kind!r} at {time} before now={self.now}"
            )
        heapq.heappush(self._queue, (time, next(self._sequence), event))

    # -- execution ------------------------------------------------------------------

    def _dispatch(self, event: Event) -> None:
        handlers = self._handlers.get(event.kind)
        if not handlers:
            raise SimulationError(f"no handler registered for {event.kind!r}")
        for handler in handlers:
            handler(self, event)

    def step(self) -> Optional[Event]:
        """Process the next event; returns it, or None when idle."""
        if not self._queue:
            return None
        time, _seq, event = heapq.heappop(self._queue)
        self.now = time
        self._dispatch(event)
        self.processed += 1
        return event

    def run_until(self, end_time: float) -> None:
        """Process every event scheduled strictly before ``end_time``.

        Leaves ``now`` at ``end_time`` so state can be probed "at" that
        instant with all earlier effects applied.
        """
        if end_time < self.now:
            raise SimulationError(
                f"cannot run backwards to {end_time} from now={self.now}"
            )
        while self._queue and self._queue[0][0] < end_time:
            self.step()
        self.now = end_time

    def run_to_completion(self, max_events: int = 10_000_000) -> None:
        """Drain the queue entirely (bounded against runaway schedules)."""
        count = 0
        while self._queue:
            self.step()
            count += 1
            if count > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway schedule?"
                )

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)
