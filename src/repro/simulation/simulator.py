"""Driving a storage design through simulated time.

The :class:`DependabilitySimulator` builds the RP schedule of every
secondary level of a :class:`~repro.core.hierarchy.StorageDesign` on a
discrete-event engine (creation, availability and expiry events feeding
per-level :class:`~repro.simulation.rp_store.RPStore` instances), then
answers failure-injection queries:

* :meth:`measure_loss` — for a failure at time *t*, the *actual* recent
  data loss: the gap between the recovery target and the newest usable
  RP across the surviving levels;
* :meth:`measure_losses` — a batch of failure times at once;
* :meth:`measure_degraded_loss` — the same with one level disabled for
  a maintenance window (the paper's "degraded mode" future work): RPs
  the disabled level would have created during the outage simply never
  exist.

The analytic model's worst-case bound should dominate every simulated
sample (validation), and adversarial failure times should approach it
(tightness); ``tests/test_simulation.py`` asserts both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.dataloss import level_range
from ..core.hierarchy import Level, StorageDesign
from ..exceptions import SimulationError
from ..scenarios.failures import FailureScenario
from .engine import Event, SimulationEngine
from .rp_store import RPStore, RetrievalPoint


@dataclass(frozen=True)
class SimulatedLoss:
    """The outcome of one injected failure."""

    failure_time: float
    target_age: float
    data_loss: float
    source_level_index: Optional[int]
    total_loss: bool


class DependabilitySimulator:
    """Simulates the RP lifecycles of a design over a horizon.

    Parameters
    ----------
    design:
        The storage system design to simulate.
    horizon:
        Simulated duration, seconds.  Must comfortably exceed the
        slowest level's cycle period times its retention count, so
        steady state is reached; the constructor enforces two full
        retention windows plus warm-up.
    """

    def __init__(self, design: StorageDesign, horizon: float):
        if horizon <= 0:
            raise SimulationError("horizon must be positive")
        self.design = design
        self.horizon = float(horizon)
        self.engine = SimulationEngine()
        self.stores: "Dict[int, RPStore]" = {}
        self._disabled: "Dict[int, Tuple[float, float]]" = {}
        self._built = False

    # -- schedule construction -------------------------------------------------------

    def _required_warmup(self) -> float:
        """Time for the slowest level to fill its retention window."""
        warmup = 0.0
        for level in self.design.secondary_levels():
            try:
                cycle = level.technique.cycle()
            except (AttributeError, NotImplementedError):
                continue  # continuous techniques have no retention window
            warmup = max(warmup, cycle.retention_count * cycle.period)
        return warmup

    def build(self) -> None:
        """Generate every RP event over the horizon and run the engine."""
        if self._built:
            return
        warmup = self._required_warmup()
        if self.horizon < 2 * warmup:
            raise SimulationError(
                f"horizon {self.horizon:.0f}s is too short: need at least "
                f"{2 * warmup:.0f}s (two retention windows of the slowest "
                "level) to reach steady state"
            )
        self.engine.on("rp-created", self._on_rp_created)
        for level in self.design.secondary_levels():
            self.stores[level.index] = RPStore(level.technique.name)
            self._schedule_level(level)
        self.engine.run_to_completion()
        self._built = True

    def _schedule_level(self, level: Level) -> None:
        """Emit rp-created events for every cycle event over the horizon."""
        try:
            cycle = level.technique.cycle()
        except (AttributeError, NotImplementedError):
            # Continuous techniques (sync/async mirrors) track "now" with
            # a fixed lag; modeled as dense RPs at a fine grain below.
            self._schedule_continuous(level)
            return
        upstream = self.design.upstream_delay(level.index)
        n_cycles = int(self.horizon // cycle.period) + 1
        for k in range(n_cycles):
            base = k * cycle.period
            last_full_snapshot: Optional[float] = None
            for event in cycle.events:
                snapshot = base + event.offset
                if snapshot > self.horizon:
                    continue
                payload = {
                    "level": level.index,
                    "snapshot": snapshot,
                    "available": snapshot + upstream + event.availability_delay,
                    "expires": snapshot + cycle.retention_count * cycle.period,
                    "is_full": event.is_full,
                    "label": event.label,
                }
                self.engine.schedule(snapshot, Event("rp-created", payload))
        # Incremental base-full links are resolved at creation time in
        # the handler (most recent full snapshot at or before).

    def _schedule_continuous(self, level: Level) -> None:
        """Mirrors hold a rolling copy: model as dense discrete images.

        The continuous stream is discretized at ``step`` granularity
        with the availability delay reduced by one step, so sampled
        losses stay at or below the analytic lag bound (the
        discretization errs conservative, never optimistic).
        """
        lag = level.technique.worst_lag()
        step = max(lag / 4.0, 1.0)
        delay = max(lag - step, 0.0)
        upstream = self.design.upstream_delay(level.index)
        count = int(self.horizon // step) + 1
        for k in range(count):
            snapshot = k * step
            payload = {
                "level": level.index,
                "snapshot": snapshot,
                "available": snapshot + upstream + delay,
                # A mirror keeps only the current image: the previous
                # "RP" is overwritten as soon as the next lands.
                "expires": snapshot + 2 * step,
                "is_full": True,
                "label": "mirror-image",
            }
            self.engine.schedule(snapshot, Event("rp-created", payload))

    def _on_rp_created(self, engine: SimulationEngine, event: Event) -> None:
        payload = event.payload
        level_index = payload["level"]
        store = self.stores[level_index]
        # Suppress RPs whose creation falls inside a disabled window.
        disabled = self._disabled.get(level_index)
        if disabled is not None:
            start, end = disabled
            if start <= payload["snapshot"] < end:
                return
        base_full: Optional[float] = None
        if not payload["is_full"]:
            fulls = [
                p.snapshot_time
                for p in store.points
                if p.is_full and p.snapshot_time <= payload["snapshot"]
            ]
            if not fulls:
                return  # incremental with no restorable base yet
            base_full = max(fulls)
        store.add(
            RetrievalPoint(
                snapshot_time=payload["snapshot"],
                available_at=payload["available"],
                expires_at=payload["expires"],
                is_full=payload["is_full"],
                label=payload["label"],
                base_full_snapshot=base_full,
            )
        )

    # -- degraded mode -----------------------------------------------------------------

    def disable_level(self, level_index: int, start: float, end: float) -> None:
        """Mark a level out of service for ``[start, end)``.

        Must be called before :meth:`build`.  RPs the level would have
        created in the window never exist — the paper's degraded-mode
        question is how much extra loss exposure that creates.
        """
        if self._built:
            raise SimulationError("disable_level must precede build()")
        if end <= start:
            raise SimulationError("disabled window must have positive length")
        if level_index == 0:
            raise SimulationError("cannot disable the primary copy")
        self._disabled[level_index] = (start, end)

    # -- failure injection -----------------------------------------------------------------

    def measure_loss(
        self,
        scenario: FailureScenario,
        failure_time: float,
    ) -> SimulatedLoss:
        """The actual data loss a failure at ``failure_time`` would cause."""
        self.build()
        if not 0 <= failure_time <= self.horizon:
            raise SimulationError(
                f"failure time {failure_time} outside horizon [0, {self.horizon}]"
            )
        target_time = failure_time - scenario.recovery_target_age
        best: Optional[Tuple[float, int]] = None
        for level in self.design.surviving_levels(scenario):
            store = self.stores.get(level.index)
            if store is None:
                continue
            point = store.newest_usable_at_or_before(target_time, failure_time)
            if point is None:
                continue
            loss = target_time - point.snapshot_time
            if best is None or loss < best[0]:
                best = (loss, level.index)
        if best is None:
            return SimulatedLoss(
                failure_time=failure_time,
                target_age=scenario.recovery_target_age,
                data_loss=float("inf"),
                source_level_index=None,
                total_loss=True,
            )
        return SimulatedLoss(
            failure_time=failure_time,
            target_age=scenario.recovery_target_age,
            data_loss=best[0],
            source_level_index=best[1],
            total_loss=False,
        )

    def measure_losses(
        self,
        scenario: FailureScenario,
        failure_times: Iterable[float],
    ) -> "List[SimulatedLoss]":
        """Batch :meth:`measure_loss` over many failure times."""
        return [self.measure_loss(scenario, t) for t in failure_times]

    # -- validation helpers ------------------------------------------------------------------

    def analytic_bound(self, scenario: FailureScenario) -> float:
        """The analytic worst-case loss for the scenario's best source.

        The simulator's samples must never exceed this (for failure
        times past warm-up and with no degraded windows).
        """
        best = float("inf")
        for level in self.design.surviving_levels(scenario):
            rng = level_range(self.design, level)
            target = scenario.recovery_target_age
            if target < rng.newest_age:
                candidate = rng.newest_age
            elif target <= rng.oldest_age:
                candidate = level.technique.worst_spacing()
            else:
                continue
            best = min(best, candidate)
        return best

    def steady_state_window(self) -> "Tuple[float, float]":
        """Failure times safely past warm-up and before the horizon edge."""
        warmup = self._required_warmup()
        return warmup, self.horizon - warmup / 2
