"""Degraded-mode exposure profiles.

When a data protection technique is out of service (a failed tape
library, a paused mirror), the data-loss exposure of a failure striking
*during or after* the outage grows.  :func:`exposure_profile` sweeps
probe failure times across and beyond an outage window on two
simulators — one healthy, one with the level disabled — and reports the
exposure pair at each probe, quantifying both the peak extra exposure
and how long after service restoration the exposure takes to recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.hierarchy import StorageDesign
from ..exceptions import SimulationError
from ..scenarios.failures import FailureScenario
from .simulator import DependabilitySimulator


@dataclass(frozen=True)
class ExposurePoint:
    """Healthy vs degraded loss exposure at one probe instant."""

    probe_time: float
    healthy_loss: float
    degraded_loss: float

    @property
    def extra_exposure(self) -> float:
        """How much more would be lost because of the outage."""
        if self.degraded_loss == float("inf"):
            return float("inf")
        return max(0.0, self.degraded_loss - self.healthy_loss)


@dataclass(frozen=True)
class ExposureProfile:
    """The exposure sweep across an outage window."""

    level_index: int
    outage_start: float
    outage_end: float
    points: Tuple[ExposurePoint, ...]

    @property
    def peak_extra_exposure(self) -> float:
        """The largest outage-attributable exposure over the sweep."""
        return max(point.extra_exposure for point in self.points)

    def recovery_probe(self) -> float:
        """First probe after the outage with no extra exposure left.

        ``inf`` when the sweep never observes full recovery (extend the
        probe range).
        """
        for point in self.points:
            if point.probe_time >= self.outage_end and point.extra_exposure <= 0:
                return point.probe_time
        return float("inf")


def exposure_profile(
    design_factory,
    workload,
    scenario: FailureScenario,
    level_index: int,
    outage_start: float,
    outage_duration: float,
    horizon: float,
    probes: int = 24,
    probe_overhang: float = None,
) -> ExposureProfile:
    """Sweep failure probes across (and past) a level outage.

    ``design_factory`` must build a fresh design per call (simulators
    need independent device/demand state).  Probes run from the outage
    start to ``outage_end + probe_overhang`` (default: one outage
    duration past the end).
    """
    if probes < 2:
        raise SimulationError("need at least two probes")
    if outage_duration <= 0:
        raise SimulationError("outage duration must be positive")
    from ..core.demands import register_design_demands

    outage_end = outage_start + outage_duration
    overhang = outage_duration if probe_overhang is None else probe_overhang

    healthy_design = design_factory()
    register_design_demands(healthy_design, workload)
    healthy = DependabilitySimulator(healthy_design, horizon=horizon)
    healthy.build()

    degraded_design = design_factory()
    register_design_demands(degraded_design, workload)
    degraded = DependabilitySimulator(degraded_design, horizon=horizon)
    degraded.disable_level(level_index, outage_start, outage_end)
    degraded.build()

    span = outage_end + overhang - outage_start
    points: "List[ExposurePoint]" = []
    for i in range(probes):
        probe = outage_start + span * i / (probes - 1)
        if probe > horizon:
            break
        points.append(
            ExposurePoint(
                probe_time=probe,
                healthy_loss=healthy.measure_loss(scenario, probe).data_loss,
                degraded_loss=degraded.measure_loss(scenario, probe).data_loss,
            )
        )
    return ExposureProfile(
        level_index=level_index,
        outage_start=outage_start,
        outage_end=outage_end,
        points=tuple(points),
    )
