"""Retrieval-point bookkeeping for one simulated level.

An :class:`RPStore` tracks every RP a level has been promised: its
snapshot time, when it becomes available (after hold + propagation and
any upstream delays), when it expires (retention), whether it is a full
or an incremental, and — for incrementals — the base full it depends
on.  Queries answer "what was usable at instant *t* for target *s*?",
which is exactly what failure injection needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..exceptions import SimulationError


@dataclass(frozen=True)
class RetrievalPoint:
    """One RP's lifecycle timestamps (all absolute simulation seconds)."""

    snapshot_time: float
    available_at: float
    expires_at: float
    is_full: bool = True
    label: str = "rp"
    base_full_snapshot: Optional[float] = None

    def __post_init__(self) -> None:
        if self.available_at < self.snapshot_time:
            raise SimulationError(
                f"RP {self.label!r} available before its snapshot"
            )
        if self.expires_at <= self.snapshot_time:
            raise SimulationError(f"RP {self.label!r} expires before creation")


class RPStore:
    """All RPs of one level, queryable at any instant.

    RPs are appended in snapshot order as the simulator creates them;
    expiry is handled lazily at query time (an RP is usable at *t* only
    if ``available_at <= t < expires_at``).
    """

    def __init__(self, level_name: str):
        self.level_name = level_name
        self._points: "List[RetrievalPoint]" = []

    def add(self, point: RetrievalPoint) -> None:
        """Record an RP; snapshot times must be non-decreasing."""
        if self._points and point.snapshot_time < self._points[-1].snapshot_time:
            raise SimulationError(
                f"{self.level_name}: RPs must be added in snapshot order"
            )
        self._points.append(point)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> "List[RetrievalPoint]":
        """All recorded RPs (copies), in snapshot order."""
        return list(self._points)

    # -- usability ------------------------------------------------------------------

    def _full_available(self, snapshot: float, at_time: float) -> bool:
        """Whether the full with the given snapshot is live at ``at_time``."""
        for point in self._points:
            if (
                point.is_full
                and point.snapshot_time == snapshot
                and point.available_at <= at_time < point.expires_at
            ):
                return True
        return False

    def usable(self, point: RetrievalPoint, at_time: float) -> bool:
        """Whether the RP can serve a restore at ``at_time``.

        Available, unexpired, and — for incrementals — the base full
        still live too.
        """
        if not (point.available_at <= at_time < point.expires_at):
            return False
        if point.is_full:
            return True
        if point.base_full_snapshot is None:
            return False
        return self._full_available(point.base_full_snapshot, at_time)

    def newest_usable_at_or_before(
        self, target_time: float, at_time: float
    ) -> Optional[RetrievalPoint]:
        """The freshest usable RP whose snapshot is <= the target time."""
        best: Optional[RetrievalPoint] = None
        for point in self._points:
            if point.snapshot_time > target_time:
                continue
            if not self.usable(point, at_time):
                continue
            if best is None or point.snapshot_time > best.snapshot_time:
                best = point
        return best

    def usable_count(self, at_time: float) -> int:
        """How many RPs are usable at the instant (retention check)."""
        return sum(1 for point in self._points if self.usable(point, at_time))
