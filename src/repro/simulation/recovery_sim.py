"""Event-level recovery simulation with bandwidth contention.

The analytic recovery model (§3.3.4) charges each transfer the *static*
leftover bandwidth — the envelope minus the normal-mode RP propagation
demands.  In reality the contention varies: a backup window may be
active (or not) while the restore runs, and several recovery transfers
can contend with each other on a shared device.

:class:`RecoverySimulator` replays a
:class:`~repro.core.recovery.RecoveryPlan` (or several, for portfolio
recoveries) as discrete events under a configurable contention profile:

* ``background_load`` — the fraction of each device's normal-mode
  demand actually present during recovery (1.0 reproduces the analytic
  assumption; 0.0 models "all protection work suspended while we
  restore", the common operational choice);
* concurrent transfers on one device share its available bandwidth
  equally (processor sharing), re-evaluated at every arrival/departure.

Its headline use is validating the analytic recovery time: with
``background_load=1.0`` and a single recovery, the simulated completion
matches the analytic plan exactly; suspending background load can only
speed recovery; adding concurrent restores can only slow each of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.recovery import RecoveryPlan, RecoveryStep
from ..exceptions import SimulationError
from ..obs import get_metrics, get_tracer


@dataclass(frozen=True)
class TransferSpec:
    """One data movement extracted from a recovery plan."""

    label: str
    ready_at: float          # gating time (provisioning, media arrival)
    size: float              # bytes to move
    nominal_rate: float      # the analytic plan's rate, bytes/s
    devices: Tuple[str, ...]  # contended devices (source, dest, link)


@dataclass(frozen=True)
class SimulatedRecovery:
    """The simulated completion of one recovery plan."""

    plan_label: str
    finish_time: float
    transfer_records: Tuple[Tuple[str, float, float], ...]  # (label, start, end)


class RecoverySimulator:
    """Processor-sharing replay of one or more recovery plans.

    Parameters
    ----------
    device_bandwidths:
        Available bandwidth per device name under **zero** background
        load (the raw envelope), bytes/s.
    background_demands:
        Normal-mode demand per device name, bytes/s.
    background_load:
        Fraction of the background demand active during recovery, in
        [0, 1].  1.0 is the paper's assumption.
    """

    def __init__(
        self,
        device_bandwidths: "Dict[str, float]",
        background_demands: Optional["Dict[str, float]"] = None,
        background_load: float = 1.0,
    ):
        if not 0.0 <= background_load <= 1.0:
            raise SimulationError("background_load must be in [0, 1]")
        self.device_bandwidths = dict(device_bandwidths)
        self.background_demands = dict(background_demands or {})
        self.background_load = background_load

    # -- plan decomposition -------------------------------------------------------

    @staticmethod
    def transfers_from_plan(
        plan: RecoveryPlan,
        devices_per_transfer: "Sequence[Tuple[str, ...]]",
        label: str = "recovery",
        cap_at_plan_rate: bool = False,
    ) -> "List[TransferSpec]":
        """Extract the rate-based transfers of a plan.

        ``devices_per_transfer`` names, for each ``transfer`` step in
        plan order, the devices it contends on.  Fixed steps (shipment,
        media load, provisioning) gate the transfer's ``ready_at``.  By
        default the transfer is uncapped — device contention alone sets
        its rate, so lighter contention than the analytic assumption
        speeds it up; ``cap_at_plan_rate=True`` pins the single-stream
        rate to the plan's own (for exact replay regardless of load).
        """
        transfer_steps = [s for s in plan.steps if s.kind == "transfer"]
        if len(transfer_steps) != len(devices_per_transfer):
            raise SimulationError(
                f"{label}: plan has {len(transfer_steps)} transfers but "
                f"{len(devices_per_transfer)} device tuples were given"
            )
        specs: "List[TransferSpec]" = []
        for step, devices in zip(transfer_steps, devices_per_transfer):
            if step.duration <= 0:
                continue
            rate = (
                plan.recovery_size / step.duration
                if cap_at_plan_rate
                else float("inf")
            )
            specs.append(
                TransferSpec(
                    label=f"{label}:{step.label}",
                    ready_at=step.start,
                    size=plan.recovery_size,
                    nominal_rate=rate,
                    devices=tuple(devices),
                )
            )
        return specs

    # -- contention model -----------------------------------------------------------

    def _available(self, device: str) -> float:
        """Bandwidth a device offers recovery under the load profile."""
        envelope = self.device_bandwidths.get(device)
        if envelope is None:
            raise SimulationError(f"unknown device {device!r}")
        background = self.background_demands.get(device, 0.0)
        return max(0.0, envelope - self.background_load * background)

    def _rates(
        self, active: "List[List[object]]"
    ) -> "List[float]":
        """Processor-sharing rates for the active transfers.

        Each device splits its available bandwidth equally among the
        transfers using it; a transfer runs at the minimum over its
        devices, capped by its nominal (single-stream) rate.
        """
        usage: "Dict[str, int]" = {}
        for _remaining, spec in active:
            for device in spec.devices:
                usage[device] = usage.get(device, 0) + 1
        rates = []
        for _remaining, spec in active:
            rate = spec.nominal_rate
            for device in spec.devices:
                share = self._available(device) / usage[device]
                rate = min(rate, share)
            rates.append(rate)
        return rates

    # -- simulation --------------------------------------------------------------------

    def simulate(
        self, transfers: Sequence[TransferSpec]
    ) -> "List[SimulatedRecovery]":
        """Run all transfers to completion under contention.

        Returns one record per distinct plan label, with per-transfer
        start/end times and the plan's finish (its last transfer's end).
        """
        if not transfers:
            raise SimulationError("no transfers to simulate")
        tracer = get_tracer()
        metrics = get_metrics()
        events = 0
        pending = sorted(transfers, key=lambda t: t.ready_at)
        active: "List[List[object]]" = []  # [remaining_bytes, spec]
        started: "Dict[str, float]" = {}
        finished: "Dict[str, float]" = {}
        now = 0.0

        with tracer.span("sim.run", transfers=len(transfers)) as span:
            while pending or active:
                events += 1
                if not active:
                    now = max(now, pending[0].ready_at)
                while pending and pending[0].ready_at <= now:
                    spec = pending.pop(0)
                    active.append([spec.size, spec])
                    started[spec.label] = now
                rates = self._rates(active)
                if any(rate <= 0 for rate in rates):
                    stuck = [
                        spec.label
                        for (_r, spec), rate in zip(active, rates)
                        if rate <= 0
                    ]
                    raise SimulationError(
                        f"transfers starved of bandwidth: {stuck}"
                    )
                # Next event: a completion or the next pending arrival.
                completion_dts = [
                    remaining / rate for (remaining, _s), rate in zip(active, rates)
                ]
                next_completion = min(completion_dts)
                next_arrival = (
                    pending[0].ready_at - now if pending else float("inf")
                )
                dt = min(next_completion, next_arrival)
                for entry, rate in zip(active, rates):
                    entry[0] -= rate * dt
                now += dt
                still_active = []
                for entry in active:
                    if entry[0] <= 1e-6:
                        finished[entry[1].label] = now
                    else:
                        still_active.append(entry)
                active = still_active
            metrics.inc("sim.runs")
            metrics.inc("sim.events_processed", events)
            span.set(events=events, finish_time=now)

        results: "Dict[str, List[Tuple[str, float, float]]]" = {}
        for spec in transfers:
            plan_label = spec.label.split(":", 1)[0]
            results.setdefault(plan_label, []).append(
                (spec.label, started[spec.label], finished[spec.label])
            )
        return [
            SimulatedRecovery(
                plan_label=plan_label,
                finish_time=max(end for _l, _s, end in records),
                transfer_records=tuple(records),
            )
            for plan_label, records in results.items()
        ]
