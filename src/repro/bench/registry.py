"""The benchmark registry: named, discoverable micro-benchmarks.

A benchmark is registered by decorating a *setup function* — called
once per run, outside the timed region — that returns the zero-arg
thunk actually timed::

    @bench("evaluate", description="one design x one scenario")
    def bench_evaluate():
        design, workload, scenario, reqs = ...   # setup, untimed
        def run():
            evaluate(design, workload, scenario, reqs)
        return run

The registry is populated by importing :mod:`repro.bench.suite` (the
built-in hot-path benchmarks); tests register throwaway benchmarks
directly and unregister them again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..exceptions import ReproError


class BenchError(ReproError):
    """A benchmark registration or lookup problem."""


@dataclass(frozen=True)
class BenchInfo:
    """One registered benchmark: its name and setup function."""

    name: str
    setup: "Callable[[], Callable[[], object]]"
    description: str = ""


#: Every registered benchmark, keyed by name, in registration order.
BENCHES: "Dict[str, BenchInfo]" = {}


def bench(
    name: str, description: str = ""
) -> "Callable[[Callable[[], Callable[[], object]]], Callable[[], Callable[[], object]]]":
    """Register the decorated setup function under ``name``."""

    def register(setup: "Callable[[], Callable[[], object]]"):
        if name in BENCHES:
            raise BenchError(f"benchmark {name!r} is already registered")
        BENCHES[name] = BenchInfo(
            name=name, setup=setup, description=description or (setup.__doc__ or "")
        )
        return setup

    return register


def unregister(name: str) -> None:
    """Drop one benchmark (tests clean up after themselves)."""
    BENCHES.pop(name, None)


def get_bench(name: str) -> BenchInfo:
    """The named benchmark, or a :class:`BenchError` naming the options."""
    try:
        return BENCHES[name]
    except KeyError:
        known = ", ".join(sorted(BENCHES)) or "(none registered)"
        raise BenchError(f"unknown benchmark {name!r}; known: {known}") from None


def all_benches(pattern: "Optional[str]" = None) -> "List[BenchInfo]":
    """Registered benchmarks, optionally filtered by name substring."""
    infos = list(BENCHES.values())
    if pattern is not None:
        infos = [info for info in infos if pattern in info.name]
    return infos
