"""Benchmark registry, runner, history and regression gate.

* :mod:`repro.bench.registry` — the ``@bench("name")`` decorator and
  the process-wide benchmark table;
* :mod:`repro.bench.suite` — the built-in hot-path benchmarks
  (importing :mod:`repro.bench` registers them);
* :mod:`repro.bench.runner` — timing, the ``BENCH_history.jsonl``
  trajectory, the committed baseline and the regression check behind
  ``repro bench --check``.
"""

from .registry import BenchError, BenchInfo, all_benches, bench, get_bench, unregister
from .runner import (
    DEFAULT_MIN_DELTA_MS,
    DEFAULT_REPEATS,
    DEFAULT_TOLERANCE,
    HISTORY_SCHEMA,
    BenchResult,
    RegressionReport,
    append_history,
    check_regressions,
    load_baseline,
    read_history,
    run_bench,
    run_suite,
    write_baseline,
)
from . import suite  # noqa: F401  (registers the built-in benchmarks)

__all__ = [
    "bench",
    "unregister",
    "BenchError",
    "BenchInfo",
    "BenchResult",
    "RegressionReport",
    "all_benches",
    "get_bench",
    "run_bench",
    "run_suite",
    "append_history",
    "read_history",
    "load_baseline",
    "write_baseline",
    "check_regressions",
    "HISTORY_SCHEMA",
    "DEFAULT_REPEATS",
    "DEFAULT_TOLERANCE",
    "DEFAULT_MIN_DELTA_MS",
]
