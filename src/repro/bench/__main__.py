"""``python -m repro.bench`` — shorthand for ``repro bench``."""

from __future__ import annotations

import sys

from ..cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
