"""Run registered benchmarks; keep a history; gate on regressions.

One run produces a :class:`BenchResult` per benchmark (median/mean/
min/max wall-clock milliseconds over ``repeats`` timed calls, after
one untimed warmup).  Results append to a JSON-lines history file —
``BENCH_history.jsonl`` at the repo root, one record per benchmark per
run — turning the per-PR benchmark snapshots into a queryable
trajectory.  The record schema is documented in ``benchmarks/README.md``.

:func:`check_regressions` compares a run against the committed
baseline (``benchmarks/BENCH_baseline.json``).  The compared measure
is the *best-of-N* (``min_ms``) — the least noise-sensitive
microbenchmark statistic — and a benchmark regresses only when it
exceeds the baseline by **both** the relative tolerance and an
absolute slack (``min_delta_ms``), so sub-millisecond benchmarks on
noisy shared runners cannot flake the gate while a real hot-path
regression still fails it.  Benchmarks absent from the baseline are
reported as new, never failed.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from dataclasses import dataclass
from typing import IO, Any, Dict, List, Optional, Sequence, Union

from .registry import BenchInfo, get_bench

#: Version tag stamped on every history record.
HISTORY_SCHEMA = 1

#: Default acceptable slowdown vs. the baseline best-of-N (50%):
#: generous enough for shared-CI noise, tight enough to catch a real
#: hot-path regression.
DEFAULT_TOLERANCE = 0.5

#: Default absolute slack: a regression must also be at least this
#: many milliseconds over baseline, so microsecond-scale jitter on a
#: 20 us benchmark never trips the relative gate.
DEFAULT_MIN_DELTA_MS = 1.0

DEFAULT_REPEATS = 10


@dataclass(frozen=True)
class BenchResult:
    """The timings of one benchmark in one run."""

    name: str
    repeats: int
    median_ms: float
    mean_ms: float
    min_ms: float
    max_ms: float

    def record(self, timestamp: "Optional[float]" = None) -> "Dict[str, Any]":
        """The history-file record of this result (see benchmarks/README.md)."""
        return {
            "schema": HISTORY_SCHEMA,
            "kind": "bench",
            "timestamp": time.time() if timestamp is None else timestamp,
            "python": sys.version.split()[0],
            "name": self.name,
            "repeats": self.repeats,
            "median_ms": round(self.median_ms, 4),
            "mean_ms": round(self.mean_ms, 4),
            "min_ms": round(self.min_ms, 4),
            "max_ms": round(self.max_ms, 4),
        }


@dataclass(frozen=True)
class RegressionReport:
    """One benchmark's comparison against the baseline (best-of-N)."""

    name: str
    measured_ms: float            # this run's min_ms
    baseline_ms: Optional[float]  # None: benchmark is new to the baseline
    tolerance: float
    min_delta_ms: float = DEFAULT_MIN_DELTA_MS

    @property
    def ratio(self) -> Optional[float]:
        """Measured / baseline best (None for new benchmarks)."""
        if self.baseline_ms is None or self.baseline_ms <= 0:
            return None
        return self.measured_ms / self.baseline_ms

    @property
    def regressed(self) -> bool:
        """Over baseline by both the relative tolerance and the
        absolute slack."""
        ratio = self.ratio
        if ratio is None:
            return False
        delta = self.measured_ms - (self.baseline_ms or 0.0)
        return ratio > 1.0 + self.tolerance and delta > self.min_delta_ms

    def describe(self) -> str:
        if self.baseline_ms is None:
            return f"{self.name}: {self.measured_ms:.3f} ms (new, no baseline)"
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.name}: best {self.measured_ms:.3f} ms vs baseline "
            f"{self.baseline_ms:.3f} ms (x{self.ratio:.2f}, "
            f"tolerance x{1.0 + self.tolerance:.2f} and "
            f"+{self.min_delta_ms:g} ms) {verdict}"
        )


def run_bench(
    info: "Union[BenchInfo, str]", repeats: int = DEFAULT_REPEATS
) -> BenchResult:
    """Time one benchmark: setup, one warmup call, ``repeats`` timed calls."""
    if isinstance(info, str):
        info = get_bench(info)
    thunk = info.setup()
    thunk()  # warmup: first-call caches and imports stay out of the timings
    times: "List[float]" = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        thunk()
        times.append((time.perf_counter() - t0) * 1e3)
    return BenchResult(
        name=info.name,
        repeats=repeats,
        median_ms=statistics.median(times),
        mean_ms=statistics.fmean(times),
        min_ms=min(times),
        max_ms=max(times),
    )


def run_suite(
    infos: "Sequence[BenchInfo]", repeats: int = DEFAULT_REPEATS
) -> "List[BenchResult]":
    """Time several benchmarks in order."""
    return [run_bench(info, repeats=repeats) for info in infos]


def append_history(
    destination: "Union[str, IO[str]]",
    results: "Sequence[BenchResult]",
    timestamp: "Optional[float]" = None,
) -> int:
    """Append one JSONL record per result; returns the record count."""
    stamp = time.time() if timestamp is None else timestamp
    lines = [json.dumps(result.record(stamp)) for result in results]
    text = "".join(line + "\n" for line in lines)
    if isinstance(destination, str):
        with open(destination, "a") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return len(lines)


def read_history(source: "Union[str, IO[str]]") -> "List[Dict[str, Any]]":
    """All records of a history file (blank lines skipped)."""
    if isinstance(source, str):
        with open(source) as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    return [json.loads(line) for line in lines if line.strip()]


def load_baseline(path: str) -> "Dict[str, float]":
    """The committed baseline: benchmark name -> best-of-N milliseconds."""
    with open(path) as handle:
        document = json.load(handle)
    benches = document.get("benchmarks", document)
    return {str(name): float(value) for name, value in benches.items()}


def write_baseline(path: str, results: "Sequence[BenchResult]") -> None:
    """Write the results' best-of-N times as a new committed baseline."""
    document = {
        "schema": HISTORY_SCHEMA,
        "measure": "min_ms",
        "python": sys.version.split()[0],
        "repeats": results[0].repeats if results else 0,
        "benchmarks": {
            result.name: round(result.min_ms, 4) for result in results
        },
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")


def check_regressions(
    results: "Sequence[BenchResult]",
    baseline: "Dict[str, float]",
    tolerance: float = DEFAULT_TOLERANCE,
    min_delta_ms: float = DEFAULT_MIN_DELTA_MS,
) -> "List[RegressionReport]":
    """Compare every result's best-of-N against the baseline."""
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    return [
        RegressionReport(
            name=result.name,
            measured_ms=result.min_ms,
            baseline_ms=baseline.get(result.name),
            tolerance=tolerance,
            min_delta_ms=min_delta_ms,
        )
        for result in results
    ]
