"""The built-in benchmarks: every hot path the framework exposes.

Importing this module populates the registry (:data:`~repro.bench.registry.BENCHES`)
with the paths the ROADMAP cares about: single/multi-scenario
evaluation, the design-space optimizer, a sensitivity sweep, the
recovery simulator, and both linters.  Timed thunks construct their
designs fresh per call where the device ledgers are stateful — the
same convention as ``benchmarks/bench_evaluate.py``, so medians are
comparable with the seeded history.
"""

from __future__ import annotations

from .registry import bench


@bench("evaluate", description="one design x one failure scenario")
def bench_evaluate():
    from .. import casestudy
    from ..core.evaluate import evaluate
    from ..workload.presets import cello

    workload = cello()
    requirements = casestudy.case_study_requirements()
    scenario = casestudy.array_failure_scenario()

    def run():
        evaluate(casestudy.baseline_design(), workload, scenario, requirements)

    return run


@bench("evaluate_scenarios", description="one design x the case-study scenarios")
def bench_evaluate_scenarios():
    from .. import casestudy
    from ..core.evaluate import evaluate_scenarios
    from ..workload.presets import cello

    workload = cello()
    requirements = casestudy.case_study_requirements()
    scenarios = casestudy.case_study_scenarios()

    def run():
        evaluate_scenarios(
            casestudy.baseline_design(), workload, scenarios, requirements
        )

    return run


@bench("optimize", description="catalog design-space search, two scenarios")
def bench_optimize():
    from .. import casestudy
    from ..design import DesignSpace, candidate_designs, optimize
    from ..workload.presets import cello

    workload = cello()
    requirements = casestudy.case_study_requirements()
    scenarios = [
        casestudy.array_failure_scenario(),
        casestudy.site_failure_scenario(),
    ]

    def run():
        optimize(candidate_designs(DesignSpace()), workload, scenarios, requirements)

    return run


@bench(
    "optimize_parallel",
    description="catalog design-space search on a worker pool",
)
def bench_optimize_parallel():
    import os

    from .. import casestudy
    from ..design import DesignSpace, candidate_designs, optimize
    from ..engine import EngineConfig, warm_pool
    from ..workload.presets import cello

    workload = cello()
    requirements = casestudy.case_study_requirements()
    scenarios = [
        casestudy.array_failure_scenario(),
        casestudy.site_failure_scenario(),
    ]
    config = EngineConfig(workers=min(4, os.cpu_count() or 1))
    # Warm the shared pool outside the timed region: fork+import is a
    # one-off cost the engine amortizes across sweeps, and timing it
    # here would benchmark the OS, not the sweep.
    warm_pool(config.workers)

    def run():
        optimize(
            candidate_designs(DesignSpace()),
            workload,
            scenarios,
            requirements,
            config=config,
        )

    return run


@bench(
    "optimize_parallel_telemetry",
    description="pooled design-space search with the live telemetry fabric on",
)
def bench_optimize_parallel_telemetry():
    import io
    import os

    from .. import casestudy, obs
    from ..design import DesignSpace, candidate_designs, optimize
    from ..engine import EngineConfig, warm_pool
    from ..workload.presets import cello

    workload = cello()
    requirements = casestudy.case_study_requirements()
    scenarios = casestudy.case_study_scenarios()
    # At least two workers even on a single-core box so the run crosses
    # the process boundary — worker capture, capsule transport and the
    # parent-side merge are exactly what this benchmark times.
    config = EngineConfig(workers=max(2, min(4, os.cpu_count() or 1)))
    warm_pool(config.workers)
    candidates = candidate_designs(DesignSpace())

    def run():
        # The full live fabric: worker span/metric capture merged into
        # fresh parent instruments, plus throttled progress.  The
        # per-run artifact flush (ledger finalization) is benched
        # separately in benchmarks/bench_evaluate.py.
        obs.set_tracer(obs.Tracer())
        obs.set_metrics(obs.MetricsRegistry())
        obs.set_progress(obs.ProgressReporter(stream=io.StringIO()))
        try:
            optimize(candidates, workload, scenarios, requirements, config=config)
        finally:
            obs.reset()

    return run


@bench(
    "optimize_cache_warm",
    description="many-scenario design-space search from a warm result cache",
)
def bench_optimize_cache_warm():
    from .. import casestudy
    from ..design import DesignSpace, candidate_designs, optimize
    from ..engine import EngineConfig, ResultCache
    from ..scenarios.failures import FailureScenario
    from ..units import MB
    from ..workload.presets import cello

    workload = cello()
    requirements = casestudy.case_study_requirements()
    # A realistic audit sweep: many recovery targets per design, where
    # evaluation dwarfs key computation and the cache pays off.
    scenarios = [
        FailureScenario.object_corruption(
            object_size=1 * MB, recovery_target_age=f"{hours} hr"
        )
        for hours in (1, 2, 4, 8, 12, 24, 48, 96, 168, 336)
    ] + [
        casestudy.array_failure_scenario(),
        casestudy.site_failure_scenario(),
    ]
    config = EngineConfig(memory_cache_entries=256)
    cache = ResultCache(memory_entries=config.memory_cache_entries)
    candidates = candidate_designs(DesignSpace())
    # Populate the cache once; the timed region then measures pure
    # key-computation + lookup cost.
    optimize(candidates, workload, scenarios, requirements, config=config, cache=cache)

    def run():
        optimize(
            candidates, workload, scenarios, requirements,
            config=config, cache=cache,
        )

    return run


@bench("sensitivity.sweep", description="WAN link-count sweep, four points")
def bench_sensitivity_sweep():
    from .. import casestudy
    from ..design.sensitivity import sweep_link_count
    from ..workload.presets import cello

    workload = cello()
    requirements = casestudy.case_study_requirements()
    scenario = casestudy.site_failure_scenario()

    def run():
        sweep_link_count([1, 2, 4, 10], workload, scenario, requirements)

    return run


@bench("recovery.simulate", description="processor-sharing replay of the baseline plan")
def bench_recovery_simulate():
    from .. import casestudy
    from ..core.demands import register_design_demands
    from ..core.recovery import plan_recovery
    from ..scenarios.failures import FailureScenario
    from ..simulation import RecoverySimulator
    from ..workload.presets import cello

    design = casestudy.baseline_design()
    register_design_demands(design, cello())
    plan = plan_recovery(
        design, FailureScenario.array_failure("primary-array"), cello()
    )
    devices = {d.name: d for d in design.devices()}
    bandwidths = {
        name: dev.max_bandwidth * dev.recovery_read_efficiency
        for name, dev in devices.items()
        if dev.max_bandwidth != float("inf")
    }
    demands = {
        name: dev.bandwidth_demand() * dev.recovery_read_efficiency
        for name, dev in devices.items()
        if dev.max_bandwidth != float("inf")
    }
    transfers = RecoverySimulator.transfers_from_plan(
        plan, devices_per_transfer=[("tape-library", "primary-array")]
    )

    def run():
        RecoverySimulator(bandwidths, demands, background_load=1.0).simulate(
            transfers
        )

    return run


@bench("lint.spec", description="design rules over the baseline spec")
def bench_lint_spec():
    from ..lint.engine import lint_spec

    spec = {
        "workload": "cello",
        "design": "baseline",
        "scenarios": ["object", "array", "site"],
        "requirements": {
            "unavailability_per_hour": 50_000,
            "loss_per_hour": 50_000,
        },
    }

    def run():
        lint_spec(spec)

    return run


@bench("lint.codelint", description="AST code lint over repro.core.evaluate")
def bench_lint_codelint():
    import inspect

    from ..core import evaluate as evaluate_module
    from ..lint.codelint import lint_source

    source = inspect.getsource(evaluate_module)

    def run():
        lint_source(source, filename="bench/evaluate.py", allowlist=())

    return run


@bench("lint.dimcheck", description="dimensional dataflow over repro.core.evaluate")
def bench_lint_dimcheck():
    import inspect

    from ..core import evaluate as evaluate_module
    from ..lint import dimcheck

    source = inspect.getsource(evaluate_module)

    def run():
        dimcheck.lint_source(source, filename="bench/evaluate.py", allowlist=())

    return run


@bench(
    "lint.parcheck",
    description="interprocedural parallel-safety analysis over the engine package",
)
def bench_lint_parcheck():
    import inspect

    from ..engine import cache, executor, keys, sweep
    from ..lint import parcheck

    # The whole engine package as one project: real worker-boundary
    # roots (executor submits chunks) plus the modules reachable from
    # them — exercises collection, call-graph resolution and the BFS
    # effect propagation end to end.
    sources = [
        (f"bench/{mod.__name__.rsplit('.', 1)[-1]}.py", inspect.getsource(mod))
        for mod in (executor, sweep, cache, keys)
    ]

    def run():
        parcheck.analyze_sources(sources, allowlist=())

    return run


@bench(
    "lint.exncheck",
    description="interprocedural exception-flow analysis over the engine package",
)
def bench_lint_exncheck():
    import inspect

    from ..engine import cache, executor, keys, sweep
    from ..lint import exncheck

    # The same project parcheck benchmarks: real worker-boundary roots
    # plus real try/except structure — exercises summary construction,
    # the escape-set fixpoint and the handler/pickling rules end to end.
    sources = [
        (f"bench/{mod.__name__.rsplit('.', 1)[-1]}.py", inspect.getsource(mod))
        for mod in (executor, sweep, cache, keys)
    ]

    def run():
        exncheck.analyze_sources(sources, allowlist=())

    return run


@bench(
    "runs.diff",
    description="structural diff of two synthetic run manifests (in memory)",
)
def bench_runs_diff():
    from ..obs.diff import diff_runs
    from ..obs.runs import RunRecord

    def node(level, index, slow):
        name = f"phase{level}.op{index}"
        children = (
            [node(level + 1, child, slow) for child in range(3)]
            if level < 3
            else []
        )
        self_ms = 1.0
        if slow and level == 3 and index == 1:
            self_ms += 40.0
        cum = self_ms + sum(c["cum_ms"] for c in children)
        return {
            "name": name,
            "calls": 4,
            "cum_ms": cum,
            "self_ms": self_ms,
            "errors": 0,
            "children": children,
        }

    def flatten(tree_nodes, flat):
        for entry in tree_nodes:
            stats = flat.setdefault(
                entry["name"],
                {"calls": 0, "cum_ms": 0.0, "self_ms": 0.0, "errors": 0},
            )
            stats["calls"] += entry["calls"]
            stats["cum_ms"] += entry["cum_ms"]
            stats["self_ms"] += entry["self_ms"]
            flatten(entry["children"], flat)
        return flat

    def manifest(slow):
        tree = [node(1, root, slow) for root in range(3)]
        return {
            "manifest_schema": 2,
            "run_id": "cand" if slow else "base",
            "command": "optimize",
            "status": "ok",
            "started": "2026-01-01T00:00:00Z",
            "model_schema_version": "engine-v1:bench",
            "rollup": {
                "spans": flatten(tree, {}),
                "tree": tree,
                "total_ms": sum(entry["cum_ms"] for entry in tree),
                "span_count": 4 * 39,
            },
            "metrics": {
                "counters": {f"bench.counter.{i}": float(i) for i in range(24)},
                "gauges": {"bench.inflight": 0.0},
                "histograms": {
                    "bench.task.ms": {"count": 128, "total": 512.0}
                },
            },
            "tasks": [
                {
                    "task": f"design-{i}",
                    "label": "array",
                    "key": f"{i:064x}",
                    "digest": "e" * 64,
                    "cached": slow,
                    "ok": True,
                    "error_type": None,
                    "attempts": 1,
                }
                for i in range(128)
            ],
        }

    base = RunRecord("bench/base", manifest(False))
    cand = RunRecord("bench/cand", manifest(True))

    def run():
        diff_runs(base, cand)

    return run


@bench(
    "risk_ensemble",
    description="1000-member generated ensemble, analytic aggregation",
)
def bench_risk_ensemble():
    from .. import casestudy
    from ..risk import assess_risk, object_corruption_grid
    from ..workload.presets import cello

    workload = cello()
    requirements = casestudy.case_study_requirements()
    design = casestudy.baseline_design()
    ensemble = object_corruption_grid(1000, total_rate_per_year=12.0)

    def run():
        assess_risk(design, workload, ensemble, requirements)

    return run


@bench(
    "risk_ensemble_cache_warm",
    description="the same 1000-member ensemble from a warm result cache",
)
def bench_risk_ensemble_cache_warm():
    from .. import casestudy
    from ..engine import EngineConfig, ResultCache
    from ..risk import assess_risk, object_corruption_grid
    from ..workload.presets import cello

    workload = cello()
    requirements = casestudy.case_study_requirements()
    design = casestudy.baseline_design()
    ensemble = object_corruption_grid(1000, total_rate_per_year=12.0)
    config = EngineConfig(memory_cache_entries=256)
    cache = ResultCache(memory_entries=config.memory_cache_entries)
    # Populate the cache once; the timed region then measures dedup,
    # key computation and the compound-Poisson fold.
    assess_risk(design, workload, ensemble, requirements, config=config, cache=cache)

    def run():
        assess_risk(
            design, workload, ensemble, requirements,
            config=config, cache=cache,
        )

    return run
