"""The analytic risk aggregator: ensemble in, annualized risk out.

:func:`assess_risk` is the subsystem's workhorse.  It evaluates every
distinct scenario an ensemble references through the parallel,
cache-aware engine (:func:`repro.engine.map_evaluations`), then folds
the per-event severities — worst-case recovery time, recent data loss
and outage penalties from each :class:`~repro.core.results.Assessment`
— with the members' occurrence rates into annualized
expected-downtime / expected-loss / expected-penalty distributions
(:mod:`repro.risk.distributions`).

Two properties make large generated ensembles cheap:

* **content-addressed dedup** — members are grouped by the digest of
  their scenario's canonical serialization, so a 1000-member ensemble
  over 64 distinct scenarios costs 64 evaluations, and the engine's
  result cache makes repeat runs nearly free;
* **two-round cascades** — cascade splits need the *evaluator's own*
  recovery time for the primary fault, so primaries are evaluated
  first, every :class:`~repro.risk.ensemble.CascadeSpec` is expanded
  with the measured recovery times, and only then are the escalated
  scenarios (usually already deduplicated away) evaluated.

Everything downstream of the evaluations is deterministic arithmetic,
so the JSON report is byte-identical across serial, parallel and
warm-cache runs — the property the CI ``risk`` job diffs for.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.hierarchy import StorageDesign
from ..core.results import Assessment
from ..engine import EngineConfig, EvaluationTask, ResultCache, map_evaluations
from ..exceptions import RiskError
from ..obs import get_metrics, get_tracer
from ..scenarios.failures import FailureScenario
from ..scenarios.requirements import BusinessRequirements
from ..serialization import canonical_json, scenario_to_dict
from ..units import Seconds, YEAR
from ..workload.spec import Workload
from .distributions import RiskDistribution, compound_poisson_distribution
from .ensemble import EnsembleMember, ScenarioEnsemble
from .montecarlo import MonteCarloResult, SeverityRow, cross_check

DesignOrFactory = Union[StorageDesign, Callable[[], StorageDesign]]


def scenario_digest(scenario: FailureScenario) -> str:
    """A stable content digest of one scenario's canonical form."""
    payload = canonical_json(scenario_to_dict(scenario))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class MemberOutcome:
    """One expanded member: rate x evaluated per-event severities."""

    member_id: str
    scenario: str
    scenario_digest: str
    rate_per_year: float
    #: Per-event severities (worst case, straight from the evaluator).
    recovery_time: Seconds
    data_loss: Seconds
    penalty: float
    #: True for members produced by expanding a cascade spec.
    from_cascade: bool = False

    @property
    def expected_downtime_per_year(self) -> float:
        return _expected(self.rate_per_year, self.recovery_time)

    @property
    def expected_loss_per_year(self) -> float:
        return _expected(self.rate_per_year, self.data_loss)

    @property
    def expected_penalty_per_year(self) -> float:
        return _expected(self.rate_per_year, self.penalty)

    def to_dict(self) -> "Dict[str, object]":
        return {
            "member_id": self.member_id,
            "scenario": self.scenario,
            "scenario_digest": self.scenario_digest,
            "rate_per_year": self.rate_per_year,
            "recovery_time": self.recovery_time,
            "data_loss": self.data_loss,
            "penalty": self.penalty,
            "from_cascade": self.from_cascade,
            "expected_downtime_per_year": self.expected_downtime_per_year,
            "expected_loss_per_year": self.expected_loss_per_year,
            "expected_penalty_per_year": self.expected_penalty_per_year,
        }


def _expected(rate_per_year: float, severity: float) -> float:
    """Rate x severity with the inf * 0 convention: no events, no risk."""
    if severity == 0 or rate_per_year == 0:
        return 0.0
    return rate_per_year * severity


@dataclass(frozen=True)
class RiskAssessment:
    """Everything one ensemble assessment produced."""

    ensemble_name: str
    design_name: str
    years: float
    total_rate_per_year: float
    unique_scenarios: int
    members: "Tuple[MemberOutcome, ...]"
    downtime: RiskDistribution
    loss: RiskDistribution
    penalty: RiskDistribution
    monte_carlo: "Optional[MonteCarloResult]" = None
    grid_bins: int = field(default=2048, compare=False)

    @property
    def expected_downtime_per_year(self) -> float:
        return self.downtime.mean / self.years

    @property
    def expected_loss_per_year(self) -> float:
        return self.loss.mean / self.years

    @property
    def expected_penalty_per_year(self) -> float:
        return self.penalty.mean / self.years

    def to_dict(self) -> "Dict[str, object]":
        """A stable, cache-independent JSON form.

        Deliberately excludes anything that varies across equivalent
        runs (cache hits, timings, worker counts) so serial, parallel
        and warm-cache invocations serialize byte-identically.
        """
        data: "Dict[str, object]" = {
            "schema": 1,
            "kind": "risk_assessment",
            "ensemble": self.ensemble_name,
            "design": self.design_name,
            "years": self.years,
            "total_rate_per_year": self.total_rate_per_year,
            "members": len(self.members),
            "unique_scenarios": self.unique_scenarios,
            "downtime": self.downtime.to_dict(),
            "loss": self.loss.to_dict(),
            "penalty": self.penalty.to_dict(),
            "per_member": [m.to_dict() for m in self.members],
        }
        if self.monte_carlo is not None:
            data["monte_carlo"] = self.monte_carlo.to_dict()
        return data


def assess_risk(
    design: DesignOrFactory,
    workload: Workload,
    ensemble: ScenarioEnsemble,
    requirements: BusinessRequirements,
    *,
    years: float = 1.0,
    samples: int = 0,
    seed: int = 0,
    grid_bins: int = 2048,
    config: "Optional[EngineConfig]" = None,
    cache: "Optional[ResultCache]" = None,
) -> RiskAssessment:
    """Assess a design's annualized risk under a scenario ensemble.

    ``design`` is a built :class:`StorageDesign` or a zero-argument
    factory (the design-space convention).  ``samples > 0`` adds the
    seeded Monte Carlo cross-check.  ``config`` / ``cache`` ride the
    existing engine fabric — workers, result cache, telemetry — and
    never change the numbers.
    """
    if not years > 0:
        raise RiskError(f"assessment horizon must be positive, got {years!r}")
    metrics = get_metrics()
    tracer = get_tracer()
    with tracer.span(
        "risk.assess", ensemble=ensemble.name, members=len(ensemble)
    ):
        horizon = years * YEAR
        assessments: "Dict[str, Assessment]" = {}
        evaluate = _make_evaluator(
            design, workload, requirements, config, cache, assessments
        )

        # Round 1: declared members plus every cascade's primary (the
        # recovery time of which sets the cascade probability).
        first_round = [m.scenario for m in ensemble.members]
        first_round.extend(c.primary for c in ensemble.cascades)
        evaluate(first_round)

        expanded: "List[Tuple[EnsembleMember, bool]]" = [
            (m, False) for m in ensemble.members
        ]
        for cascade in ensemble.cascades:
            primary = assessments[scenario_digest(cascade.primary)]
            expanded.extend(
                (m, True) for m in cascade.split(primary.recovery_time)
            )

        # Round 2: escalated scenarios the splits introduced (already
        # in ``assessments`` if any declared member shares them).
        evaluate([m.scenario for m, _ in expanded])

        outcomes = []
        for member, from_cascade in expanded:
            digest = scenario_digest(member.scenario)
            assessment = assessments[digest]
            outcomes.append(
                MemberOutcome(
                    member_id=member.member_id,
                    scenario=member.scenario.describe(),
                    scenario_digest=digest,
                    rate_per_year=member.rate_per_year,
                    recovery_time=assessment.recovery_time,
                    data_loss=assessment.recent_data_loss,
                    penalty=assessment.costs.total_penalties,
                    from_cascade=from_cascade,
                )
            )
        outcomes.sort(key=lambda outcome: outcome.member_id)

        severity = {
            "downtime": [], "loss": [], "penalty": [],
        }  # type: Dict[str, List[Tuple[float, float]]]
        rows: "List[SeverityRow]" = []
        for outcome in outcomes:
            rate = outcome.rate_per_year / YEAR
            severity["downtime"].append((rate, outcome.recovery_time))
            severity["loss"].append((rate, outcome.data_loss))
            severity["penalty"].append((rate, outcome.penalty))
            rows.append(
                (
                    outcome.member_id,
                    rate,
                    outcome.recovery_time,
                    outcome.data_loss,
                    outcome.penalty,
                )
            )

        with tracer.span("risk.fold", entries=len(outcomes)):
            downtime = compound_poisson_distribution(
                severity["downtime"], horizon, grid_bins
            )
            loss = compound_poisson_distribution(
                severity["loss"], horizon, grid_bins
            )
            penalty = compound_poisson_distribution(
                severity["penalty"], horizon, grid_bins
            )

        monte_carlo = None
        if samples > 0:
            with tracer.span("risk.monte_carlo", samples=samples):
                monte_carlo = cross_check(rows, horizon, samples, seed)

        metrics.inc("risk.assessments")
        metrics.inc("risk.members", len(outcomes))
        metrics.set_gauge("risk.unique_scenarios", len(assessments))
        design_name = next(iter(assessments.values())).design_name
        return RiskAssessment(
            ensemble_name=ensemble.name,
            design_name=design_name,
            years=years,
            total_rate_per_year=ensemble.total_rate * YEAR,
            unique_scenarios=len(assessments),
            members=tuple(outcomes),
            downtime=downtime,
            loss=loss,
            penalty=penalty,
            monte_carlo=monte_carlo,
            grid_bins=grid_bins,
        )


def _make_evaluator(
    design: DesignOrFactory,
    workload: Workload,
    requirements: BusinessRequirements,
    config: "Optional[EngineConfig]",
    cache: "Optional[ResultCache]",
    assessments: "Dict[str, Assessment]",
) -> "Callable[[Sequence[FailureScenario]], None]":
    """An incremental evaluator that fills ``assessments`` by digest.

    Each call evaluates only scenarios whose digest is still unknown —
    one engine task per *unique* scenario, named ``risk:{digest}`` so
    run ledgers and traces attribute work to content, not member ids.
    """
    if isinstance(design, StorageDesign):
        task_design: "Optional[StorageDesign]" = design
        factory = None
    elif callable(design):
        task_design = None
        factory = design
    else:
        raise RiskError(
            f"design must be a StorageDesign or a factory, got {design!r}"
        )

    def evaluate(scenarios: "Sequence[FailureScenario]") -> None:
        fresh: "Dict[str, FailureScenario]" = {}
        for scenario in scenarios:
            digest = scenario_digest(scenario)
            if digest not in assessments and digest not in fresh:
                fresh[digest] = scenario
        if not fresh:
            return
        tasks = [
            EvaluationTask(
                name=f"risk:{digest}",
                workload=workload,
                scenarios=(scenario,),
                requirements=requirements,
                design=task_design,
                factory=factory,
            )
            for digest, scenario in fresh.items()
        ]
        outcomes = map_evaluations(tasks, config, cache, label="risk")
        for (digest, scenario), outcome in zip(fresh.items(), outcomes):
            if not outcome.ok:
                error = outcome.error
                assert error is not None
                raise error
            assessments[digest] = outcome.value[scenario.describe()]

    return evaluate


def degenerate_assessment(
    assessment: Assessment, member_id: str = "only"
) -> MemberOutcome:
    """The MemberOutcome a one-member, 1/yr ensemble must reproduce.

    A convenience for tests and docs: wraps a deterministic
    :func:`repro.core.evaluate.evaluate` result in the outcome shape
    so equality against :func:`assess_risk` output is a one-liner.
    """
    return MemberOutcome(
        member_id=member_id,
        scenario=assessment.scenario.describe(),
        scenario_digest=scenario_digest(assessment.scenario),
        rate_per_year=1.0,
        recovery_time=assessment.recovery_time,
        data_loss=assessment.recent_data_loss,
        penalty=assessment.costs.total_penalties,
    )
