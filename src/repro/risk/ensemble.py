"""Scenario ensembles: failure scenarios with annual occurrence rates.

The base framework evaluates one *hypothesized* failure at a time and
reports its worst case.  An ensemble goes probabilistic: it attaches an
occurrence rate to each :class:`~repro.scenarios.failures.FailureScenario`
and lets the aggregator fold per-event severities into annualized
expected-downtime / expected-loss / expected-penalty distributions.

Three ways members enter an ensemble:

* **declared** — a scenario with an explicit rate (or a rate produced
  by the k-out-of-n redundancy model of :mod:`repro.risk.kofn`);
* **correlated** — :func:`correlated_pair` splits one fault's rate
  between its plain form and a co-occurring form (the motivating case:
  an array failure during the backup window also voids the in-flight
  backup copy, escalating the effective scope);
* **cascading** — a :class:`CascadeSpec` models a second fault arriving
  *during recovery* from the first.  The cascade probability depends on
  the recovery time the evaluator itself computes, so cascades stay
  symbolic until :meth:`CascadeSpec.split` is given that recovery time
  (the aggregator does this after evaluating the primary scenario).

Rates are events per **second** internally — the same SI-base-unit
convention as every other quantity in the framework.  Spec files write
``"0.5/yr"`` and :func:`repro.units.parse_event_rate` converts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..exceptions import RiskError
from ..scenarios.failures import FailureScenario
from ..units import MB, WEEK, PerSecond, Seconds, YEAR, parse_duration, parse_size


@dataclass(frozen=True)
class EnsembleMember:
    """One failure scenario with its occurrence rate (events/second)."""

    member_id: str
    scenario: FailureScenario
    occurrence_rate: PerSecond

    def __post_init__(self) -> None:
        if not self.member_id:
            raise RiskError("ensemble member id must be non-empty")
        if not self.occurrence_rate > 0:
            raise RiskError(
                f"ensemble member {self.member_id!r} has non-positive "
                f"occurrence rate {self.occurrence_rate!r} (events must "
                "be possible; drop the member instead of zeroing it)"
            )

    @classmethod
    def per_year(
        cls, member_id: str, scenario: FailureScenario, rate_per_year: float
    ) -> "EnsembleMember":
        """A member declared in the paper's events-per-year idiom."""
        return cls(member_id, scenario, rate_per_year / YEAR)

    @property
    def rate_per_year(self) -> float:
        """The occurrence rate in events per year (for reporting)."""
        return self.occurrence_rate * YEAR


@dataclass(frozen=True)
class CascadeSpec:
    """A second fault arriving while the first is still being repaired.

    The primary fault occurs at ``occurrence_rate``.  While its
    recovery runs (a duration the evaluator computes), a secondary
    fault process with rate ``secondary_rate`` may fire; the cascade
    probability is ``1 - exp(-secondary_rate * recovery_time)``.
    Alternatively an explicit ``probability`` fixes the split without
    reference to the recovery time.  :meth:`split` expands the spec
    into two concrete members: the escalated combination and the
    uncascaded remainder.
    """

    member_id: str
    primary: FailureScenario
    occurrence_rate: PerSecond
    escalated: FailureScenario
    secondary_rate: Optional[PerSecond] = None
    probability: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.member_id:
            raise RiskError("cascade member id must be non-empty")
        if not self.occurrence_rate > 0:
            raise RiskError(
                f"cascade {self.member_id!r} has non-positive occurrence "
                f"rate {self.occurrence_rate!r}"
            )
        if (self.secondary_rate is None) == (self.probability is None):
            raise RiskError(
                f"cascade {self.member_id!r} needs exactly one of "
                "secondary_rate or probability"
            )
        if self.secondary_rate is not None and not self.secondary_rate > 0:
            raise RiskError(
                f"cascade {self.member_id!r} has non-positive secondary "
                f"rate {self.secondary_rate!r}"
            )
        if self.probability is not None and not 0 < self.probability <= 1:
            raise RiskError(
                f"cascade {self.member_id!r} probability "
                f"{self.probability!r} is outside (0, 1]"
            )

    def cascade_probability(self, recovery_time: Seconds) -> float:
        """P(secondary fault during the primary's recovery window)."""
        if self.probability is not None:
            return self.probability
        assert self.secondary_rate is not None
        if not recovery_time >= 0:
            raise RiskError(
                f"cascade {self.member_id!r}: primary recovery time is "
                f"{recovery_time!r}; a design that cannot recover from "
                "the primary fault has no finite exposure window"
            )
        return 1.0 - math.exp(-self.secondary_rate * recovery_time)

    def split(self, recovery_time: Seconds) -> "List[EnsembleMember]":
        """The concrete members this cascade contributes.

        The escalated member carries ``rate * p`` and the combined
        scenario; the remainder keeps the primary scenario at
        ``rate * (1 - p)``.  A degenerate probability (0 or 1) yields
        a single member, never a zero-rate one.
        """
        p = self.cascade_probability(recovery_time)
        members: "List[EnsembleMember]" = []
        if p > 0:
            members.append(
                EnsembleMember(
                    f"{self.member_id}.cascade",
                    self.escalated,
                    self.occurrence_rate * p,
                )
            )
        if p < 1:
            members.append(
                EnsembleMember(
                    self.member_id, self.primary, self.occurrence_rate * (1 - p)
                )
            )
        return members


@dataclass(frozen=True)
class ScenarioEnsemble:
    """A named collection of rated failure scenarios (plus cascades)."""

    name: str
    members: Tuple[EnsembleMember, ...]
    cascades: Tuple[CascadeSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.members and not self.cascades:
            raise RiskError(f"ensemble {self.name!r} has no members")
        seen = set()
        for member_id in [m.member_id for m in self.members] + [
            c.member_id for c in self.cascades
        ]:
            if member_id in seen:
                raise RiskError(
                    f"ensemble {self.name!r} has duplicate member id "
                    f"{member_id!r}"
                )
            seen.add(member_id)

    def __len__(self) -> int:
        return len(self.members) + len(self.cascades)

    @property
    def total_rate(self) -> PerSecond:
        """The combined occurrence rate of all declared events.

        Cascade splitting conserves rate, so this is exact before and
        after expansion.
        """
        declared = sum(m.occurrence_rate for m in self.members)
        return declared + sum(c.occurrence_rate for c in self.cascades)

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self.members)} members, "
            f"{len(self.cascades)} cascades"
        )


def correlated_pair(
    member_id: str,
    base: FailureScenario,
    correlated: FailureScenario,
    occurrence_rate: PerSecond,
    correlation_fraction: float,
) -> "List[EnsembleMember]":
    """Split one fault's rate between its plain and correlated forms.

    ``correlation_fraction`` is the fraction of occurrences that
    coincide with the correlating condition; those events present as
    the ``correlated`` scenario, the rest as ``base``.  The two rates
    sum to ``occurrence_rate`` exactly.
    """
    if not 0 < correlation_fraction <= 1:
        raise RiskError(
            f"correlation fraction {correlation_fraction!r} of "
            f"{member_id!r} is outside (0, 1]"
        )
    members = [
        EnsembleMember(
            f"{member_id}.corr",
            correlated,
            occurrence_rate * correlation_fraction,
        )
    ]
    if correlation_fraction < 1:
        members.append(
            EnsembleMember(
                member_id, base, occurrence_rate * (1 - correlation_fraction)
            )
        )
    return members


def array_failure_during_backup_window(
    member_id: str,
    occurrence_rate: PerSecond,
    window_fraction: float,
    device_name: str = "primary-array",
    escalated: Optional[FailureScenario] = None,
) -> "List[EnsembleMember]":
    """The motivating correlated event: the array dies mid-backup.

    ``window_fraction`` is the fraction of time the backup propagation
    window is open (``propagation_window / cycle_period`` of the backup
    level).  An array failure landing inside it also voids the copy
    being written, so recovery must come from the next level up — the
    escalated scenario, a building disaster at the primary location by
    default (array and in-flight backup media share the building).
    """
    if escalated is None:
        escalated = FailureScenario.building_disaster()
    return correlated_pair(
        member_id,
        FailureScenario.array_failure(device_name),
        escalated,
        occurrence_rate,
        window_fraction,
    )


def object_corruption_grid(
    count: int,
    total_rate_per_year: float,
    distinct_ages: int = 64,
    max_age: "float | str" = 1 * WEEK,
    object_size: "float | str" = 1 * MB,
) -> ScenarioEnsemble:
    """A generated ensemble: ``count`` rated object-corruption events.

    Recovery-target ages cycle through ``distinct_ages`` evenly spaced
    points in ``(0, max_age]``, so the ensemble holds ``count`` members
    over ``distinct_ages`` unique scenarios — the shape that exercises
    the aggregator's content-addressed dedup (and, across runs, its
    result cache).  Each member carries an equal share of
    ``total_rate_per_year``.
    """
    if count < 1:
        raise RiskError("generated ensemble needs at least one member")
    if distinct_ages < 1 or distinct_ages > count:
        raise RiskError(
            f"distinct_ages must be in [1, count], got {distinct_ages}"
        )
    age_span = parse_duration(max_age)
    size = parse_size(object_size)
    if not age_span > 0:
        raise RiskError(f"max_age must be positive, got {max_age!r}")
    share = total_rate_per_year / count
    members = []
    for index in range(count):
        age = age_span * ((index % distinct_ages) + 1) / distinct_ages
        members.append(
            EnsembleMember.per_year(
                f"obj-{index:04d}",
                FailureScenario.object_corruption(
                    object_size=size, recovery_target_age=age
                ),
                share,
            )
        )
    return ScenarioEnsemble(
        name=f"object-grid-{count}", members=tuple(members)
    )
