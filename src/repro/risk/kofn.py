"""k-out-of-n redundancy with deterministic repair (Aggarwal).

A storage scope built from ``n`` identical units that stays up while at
least ``k`` of them work — a mirrored pair is 1-out-of-2, an 8-disk
RAID-6 group is 6-out-of-8.  Units fail independently at ``unit_rate``
and a failed unit is back after a *deterministic* repair time ``tau``
(hot-spare rebuild, courier swap): the model of Aggarwal's
*k-out-of-n data storage system with deterministic parallel and serial
repair*, which the ensemble layer uses to turn device-level failure
rates into per-scope effective rates.

The system fails when, after some unit's failure, the remaining
``m = n - k`` tolerated failures all occur before repairs complete.
First-order in ``unit_rate * tau`` (events are rare on the repair
timescale):

* **parallel repair** — every failed unit is repaired concurrently, so
  each subsequent failure must land within the same window ``tau``::

      rate = n * lam * C(n-1, m) * (lam * tau) ** m

* **serial repair** — one repair facility; the j-th concurrent failure
  waits behind j-1 repairs, stretching its exposure window to
  ``j * tau``.  The product over the m windows contributes ``m!``::

      rate = n * lam * C(n-1, m) * m! * (lam * tau) ** m

The mirrored-pair sanity check (n=2, k=1, either flavor) gives the
classic ``2 * lam**2 * tau``.  The approximation needs
``lam * tau << 1``; construction rejects ``lam * tau >= 0.1`` where
the dropped higher-order terms stop being negligible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import RiskError
from ..scenarios.failures import FailureScenario
from ..units import PerSecond, Seconds
from .ensemble import EnsembleMember

#: Above this value of ``unit_rate * repair_time`` the first-order
#: approximation is no longer trustworthy (error ~ (lam*tau)^(m+1)).
MAX_RATE_REPAIR_PRODUCT = 0.1

_REPAIR_KINDS = ("parallel", "serial")


@dataclass(frozen=True)
class KofNModel:
    """``k``-out-of-``n`` units, unit failure rate, deterministic repair."""

    n: int
    k: int
    unit_rate: PerSecond
    repair_time: Seconds
    repair: str = "parallel"

    def __post_init__(self) -> None:
        if self.n < 1 or self.k < 1 or self.k > self.n:
            raise RiskError(
                f"need 1 <= k <= n, got k={self.k}, n={self.n}"
            )
        if not self.unit_rate > 0:
            raise RiskError(
                f"unit failure rate must be positive, got {self.unit_rate!r}"
            )
        if not self.repair_time >= 0:
            raise RiskError(
                f"repair time must be >= 0, got {self.repair_time!r}"
            )
        if self.repair not in _REPAIR_KINDS:
            raise RiskError(
                f"repair must be one of {_REPAIR_KINDS}, got {self.repair!r}"
            )
        product = self.unit_rate * self.repair_time
        if product >= MAX_RATE_REPAIR_PRODUCT:
            raise RiskError(
                f"unit_rate * repair_time = {product:.3g} is too large "
                f"for the deterministic-repair approximation "
                f"(needs < {MAX_RATE_REPAIR_PRODUCT}); model faster "
                "repair or rarer failures"
            )

    @property
    def tolerated_failures(self) -> int:
        """``m = n - k``: concurrent failures survived after the first."""
        return self.n - self.k

    def effective_failure_rate(self) -> PerSecond:
        """The scope-level failure rate (events/second, first order)."""
        m = self.tolerated_failures
        base = (
            self.n
            * self.unit_rate
            * math.comb(self.n - 1, m)
            * (self.unit_rate * self.repair_time) ** m
        )
        if self.repair == "serial":
            return base * math.factorial(m)
        return base

    def mttf(self) -> Seconds:
        """Mean time to scope failure (the rate's reciprocal)."""
        return 1.0 / self.effective_failure_rate()

    def member(
        self, member_id: str, scenario: FailureScenario
    ) -> EnsembleMember:
        """An ensemble member rated by this redundancy model."""
        return EnsembleMember(
            member_id, scenario, self.effective_failure_rate()
        )
