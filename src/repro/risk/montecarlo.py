"""Monte Carlo cross-checks for the analytic risk aggregator.

Two independent checks, both seeded and order-insensitive:

* :func:`cross_check` re-derives the annualized distributions by brute
  force — Poisson-sample each member's event count over the horizon
  from its own named substream of the root seed
  (:func:`repro.simulation.failure_injection.substream_rng`), multiply
  by the per-event severities the evaluator computed, and summarize
  empirically.  Because every member owns its substream, the result is
  byte-identical no matter how members are ordered or sharded, which
  is what lets the CLI's serial and ``--workers N`` runs diff clean.
* :func:`simulated_loss_check` goes one layer deeper: it replays
  members through the discrete-event
  :class:`~repro.simulation.simulator.DependabilitySimulator`,
  measuring the *actual* data loss at random failure times and
  checking none exceeds the analytic worst case the aggregator's
  severities are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import RiskError
from ..scenarios.failures import FailureScenario
from ..simulation.failure_injection import random_times, substream_rng
from ..simulation.simulator import DependabilitySimulator
from ..units import WEEK, PerSecond, Seconds
from .distributions import RiskDistribution, empirical_distribution

#: (member_id, rate per second, downtime, loss, penalty) — the flat
#: severity row the aggregator hands to :func:`cross_check`.
SeverityRow = Tuple[str, PerSecond, float, float, float]


@dataclass(frozen=True)
class MonteCarloResult:
    """Sampled counterparts of the analytic distributions."""

    samples: int
    seed: int
    downtime: RiskDistribution
    loss: RiskDistribution
    penalty: RiskDistribution

    def to_dict(self) -> "Dict[str, object]":
        return {
            "samples": self.samples,
            "seed": self.seed,
            "downtime": self.downtime.to_dict(),
            "loss": self.loss.to_dict(),
            "penalty": self.penalty.to_dict(),
        }


def cross_check(
    rows: "Sequence[SeverityRow]",
    horizon: Seconds,
    samples: int,
    seed: int = 0,
) -> MonteCarloResult:
    """Sample the annualized totals and summarize them empirically.

    Each row's event count is ``Poisson(rate * horizon)`` drawn from
    the substream ``risk:{member_id}`` of ``seed``; severities scale
    the counts (infinite severities contribute an infinite total
    whenever at least one event occurs).  Rows are sorted by member id
    before sampling, so input order never matters.
    """
    if samples < 1:
        raise RiskError(f"Monte Carlo needs >= 1 sample, got {samples}")
    if not horizon > 0:
        raise RiskError(f"risk horizon must be positive, got {horizon!r}")
    downtime = np.zeros(samples)
    loss = np.zeros(samples)
    penalty = np.zeros(samples)
    for member_id, rate, event_downtime, event_loss, event_penalty in sorted(
        rows
    ):
        rng = substream_rng(seed, f"risk:{member_id}")
        counts = rng.poisson(rate * horizon, size=samples).astype(float)
        downtime += _scaled(counts, event_downtime)
        loss += _scaled(counts, event_loss)
        penalty += _scaled(counts, event_penalty)
    return MonteCarloResult(
        samples=samples,
        seed=seed,
        downtime=empirical_distribution(downtime),
        loss=empirical_distribution(loss),
        penalty=empirical_distribution(penalty),
    )


def _scaled(counts: "np.ndarray", severity: float) -> "np.ndarray":
    """Total severity per sample; 0 events x infinite severity is 0."""
    if math.isfinite(severity):
        return counts * severity
    return np.where(counts > 0, float("inf"), 0.0)


@dataclass(frozen=True)
class BoundCheck:
    """One member's simulated losses against its analytic bound."""

    member_id: str
    scenario: str
    analytic_bound: Seconds
    max_simulated: Seconds
    samples: int

    @property
    def within_bound(self) -> bool:
        return self.max_simulated <= self.analytic_bound


def simulated_loss_check(
    design,
    members: "Sequence[Tuple[str, FailureScenario]]",
    seed: int = 0,
    times_per_member: int = 16,
    horizon: "Optional[Seconds]" = None,
) -> "List[BoundCheck]":
    """Replay members through the event simulator; check the bound.

    For each ``(member_id, scenario)`` pair, inject
    ``times_per_member`` random failure times (from the member's own
    substream of ``seed``) into a built simulation of ``design`` and
    compare the worst measured data loss against
    :meth:`DependabilitySimulator.analytic_bound`.  A member whose
    measured loss exceeded its bound would mean the aggregator's
    severities understate reality — the check the paper's validation
    future-work item asks for, applied to the risk layer.
    """
    if callable(design) and not hasattr(design, "levels"):
        design = design()
    simulator = DependabilitySimulator(
        design, horizon=horizon if horizon is not None else 320 * WEEK
    )
    simulator.build()
    start, end = simulator.steady_state_window()
    checks: "List[BoundCheck]" = []
    for member_id, scenario in sorted(members, key=lambda pair: pair[0]):
        times = random_times(
            start, end, times_per_member, seed=seed,
            stream=f"risk:{member_id}",
        )
        losses = [
            simulator.measure_loss(scenario, t).data_loss for t in times
        ]
        checks.append(
            BoundCheck(
                member_id=member_id,
                scenario=scenario.describe(),
                analytic_bound=simulator.analytic_bound(scenario),
                max_simulated=max(losses),
                samples=times_per_member,
            )
        )
    return checks
