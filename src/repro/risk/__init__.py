"""repro.risk — probabilistic risk assessment over scenario ensembles.

The paper's framework answers "how bad is *this* failure?"; this
package answers "how much dependability risk does the design carry
*per year*?".  It attaches annual occurrence rates to failure
scenarios, folds the evaluator's per-event severities into annualized
distributions, and cross-checks the analytics by simulation:

* :mod:`repro.risk.ensemble` — rated scenario ensembles, correlated
  events (array failure during the backup window) and cascades (a
  second fault during recovery, parameterized by the evaluator's own
  recovery time);
* :mod:`repro.risk.kofn` — the k-out-of-n redundancy model with
  deterministic repair (Aggarwal) that turns unit failure rates into
  per-scope effective rates;
* :mod:`repro.risk.distributions` — exact compound-Poisson folding via
  the Panjer recursion, with percentiles;
* :mod:`repro.risk.aggregate` — :func:`assess_risk`, which evaluates
  every distinct scenario through :mod:`repro.engine` (content
  addressing dedupes generated ensembles; the result cache makes
  repeat runs nearly free);
* :mod:`repro.risk.montecarlo` — seeded, substream-based Monte Carlo
  cross-checks of the analytic distributions and of the underlying
  loss model.

Layering: risk sits *above* core/scenarios/engine/simulation and is
imported by serialization's spec codecs and the CLI — never by the
models it drives.
"""

from .aggregate import (
    MemberOutcome,
    RiskAssessment,
    assess_risk,
    degenerate_assessment,
    scenario_digest,
)
from .distributions import (
    PERCENTILES,
    RiskDistribution,
    compound_poisson_distribution,
    empirical_distribution,
)
from .ensemble import (
    CascadeSpec,
    EnsembleMember,
    ScenarioEnsemble,
    array_failure_during_backup_window,
    correlated_pair,
    object_corruption_grid,
)
from .kofn import KofNModel
from .montecarlo import (
    BoundCheck,
    MonteCarloResult,
    cross_check,
    simulated_loss_check,
)

__all__ = [
    "BoundCheck",
    "CascadeSpec",
    "EnsembleMember",
    "KofNModel",
    "MemberOutcome",
    "MonteCarloResult",
    "PERCENTILES",
    "RiskAssessment",
    "RiskDistribution",
    "ScenarioEnsemble",
    "array_failure_during_backup_window",
    "assess_risk",
    "compound_poisson_distribution",
    "correlated_pair",
    "cross_check",
    "degenerate_assessment",
    "empirical_distribution",
    "object_corruption_grid",
    "scenario_digest",
    "simulated_loss_check",
]
