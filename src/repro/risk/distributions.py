"""Annualized risk distributions from rated per-event severities.

Each ensemble member is a Poisson event process with a fixed per-event
severity (downtime seconds, loss seconds, penalty dollars).  Over a
horizon the total severity is therefore a *compound Poisson* sum, and
the distributions here fold the whole ensemble into one such sum:

* the number of events of member *i* over horizon ``T`` is
  ``Poisson(rate_i * T)``, so the superposition has intensity
  ``Lambda = T * sum(rate_i)`` and per-event severity drawn from the
  rate-weighted mixture of the members' severities;
* the total-severity distribution follows from the Panjer recursion on
  a discretized severity grid::

      g_0 = exp(-Lambda * (1 - f_0))
      g_j = (Lambda / j) * sum_{i=1..j} i * f_i * g_{j-i}

  where ``f`` is the severity mass function on the grid and ``g`` the
  resulting total mass function — exact for the discretized severities,
  no sampling error;
* members with *infinite* severity (a scenario the design cannot
  survive) contribute an atom at infinity: with combined intensity
  ``Lambda_inf`` the probability that the total stays finite is
  ``exp(-Lambda_inf)``, and quantiles above it are infinite.

For very large ``Lambda`` the recursion's starting term underflows;
there the central limit theorem is already excellent and the quantiles
switch to the matched normal approximation.  Everything is
deterministic — byte-identical across runs, orderings and worker
counts — which is what lets the CLI diff serial/parallel/cached output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import RiskError
from ..units import PerSecond, Seconds

#: The reported quantiles, as (label, probability) pairs.
PERCENTILES: "Tuple[Tuple[str, float], ...]" = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p95", 0.95),
    ("p99", 0.99),
)

#: Above this Poisson intensity ``exp(-Lambda)`` underflows and the
#: Panjer recursion degenerates; the matched normal approximation takes
#: over (its relative error is ~``1/sqrt(Lambda)`` — negligible here).
NORMAL_APPROX_INTENSITY = 600.0


@dataclass(frozen=True)
class RiskDistribution:
    """Summary of one annualized total-severity distribution."""

    mean: float
    p50: float
    p90: float
    p95: float
    p99: float

    def quantile(self, label: str) -> float:
        value = getattr(self, label, None)
        if value is None:
            raise RiskError(f"unknown quantile {label!r}")
        return float(value)

    def to_dict(self) -> "Dict[str, float]":
        return {
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
        }


def compound_poisson_distribution(
    entries: "Sequence[Tuple[PerSecond, float]]",
    horizon: Seconds,
    bins: int = 2048,
) -> RiskDistribution:
    """Fold ``(rate, per-event severity)`` pairs over a horizon.

    ``entries`` may repeat severities (rates add) and may include
    infinite severities (mass at infinity, see module docstring).
    Zero-severity entries affect nothing but are accepted — an event
    the design fully absorbs is still an event.
    """
    if not horizon > 0:
        raise RiskError(f"risk horizon must be positive, got {horizon!r}")
    if bins < 2:
        raise RiskError(f"severity grid needs >= 2 bins, got {bins}")
    for rate, severity in entries:
        if not rate > 0:
            raise RiskError(f"severity entry has non-positive rate {rate!r}")
        if math.isnan(severity) or severity < 0:
            raise RiskError(f"per-event severity {severity!r} is not >= 0")

    finite = [(r, s) for r, s in entries if math.isfinite(s)]
    lam_inf = sum(r for r, s in entries if not math.isfinite(s)) * horizon
    p_finite = math.exp(-lam_inf)

    lam = sum(r for r, _ in finite) * horizon
    mean_total = horizon * sum(r * s for r, s in finite)
    mean = float("inf") if lam_inf > 0 else mean_total

    quantiles = _finite_quantiles(finite, horizon, lam, mean_total, bins)
    values = {}
    for label, prob in PERCENTILES:
        if prob > p_finite or (prob == p_finite and lam_inf > 0):
            values[label] = float("inf")
        else:
            # Quantile of the full distribution = quantile of the
            # finite part at the conditional probability.
            values[label] = quantiles(min(1.0, prob / p_finite))
    return RiskDistribution(mean=mean, **values)


def empirical_distribution(samples: "np.ndarray") -> RiskDistribution:
    """Summarize Monte Carlo samples with the same quantile convention.

    Quantiles use the inverted-CDF definition (smallest sample with
    empirical CDF >= p) to match the analytic grid search — no
    interpolation, so infinite samples never bleed into finite
    quantiles.
    """
    if samples.size == 0:
        raise RiskError("cannot summarize an empty sample set")
    ordered = np.sort(samples)
    n = ordered.shape[0]
    values = {}
    for label, prob in PERCENTILES:
        index = min(n - 1, max(0, math.ceil(prob * n) - 1))
        values[label] = float(ordered[index])
    finite = ordered[np.isfinite(ordered)]
    if finite.size < n:
        mean = float("inf")
    else:
        mean = float(np.mean(ordered)) if n else 0.0
    return RiskDistribution(mean=mean, **values)


def _finite_quantiles(
    finite: "List[Tuple[PerSecond, float]]",
    horizon: Seconds,
    lam: float,
    mean_total: float,
    bins: int,
):
    """A quantile function for the finite-severity compound sum."""
    positive = [(r, s) for r, s in finite if s > 0]
    if lam == 0 or not positive:
        return lambda prob: 0.0

    second_moment = horizon * sum(r * s * s for r, s in finite)
    if lam > NORMAL_APPROX_INTENSITY:
        sigma = math.sqrt(second_moment)

        def normal_quantile(prob: float) -> float:
            return max(0.0, mean_total + _probit(prob) * sigma)

        return normal_quantile

    max_sev = max(s for _, s in finite)
    # Generous upper edge: mean + 10 sigma of the compound sum plus a
    # few single worst events; mass beyond it is far below 1e-6.
    grid_max = mean_total + 10.0 * math.sqrt(second_moment) + 4.0 * max_sev
    step = grid_max / (bins - 1)
    severity_mass = np.zeros(bins)
    total_rate = sum(r for r, _ in finite)
    for rate, severity in finite:
        index = min(bins - 1, int(round(severity / step)))
        severity_mass[index] += rate / total_rate

    total_mass = _panjer(lam, severity_mass)
    cdf = np.cumsum(total_mass)
    grid = np.arange(bins) * step

    def grid_quantile(prob: float) -> float:
        index = int(np.searchsorted(cdf, prob, side="left"))
        if index >= bins:
            return float(grid[-1])
        return float(grid[index])

    return grid_quantile


def _probit(prob: float) -> float:
    """The standard normal quantile (Acklam's approximation).

    Relative error below 1.2e-9 over (0, 1) — far inside the normal
    approximation's own error at the intensities where it is used.
    """
    if not 0 < prob < 1:
        raise RiskError(f"probit needs a probability in (0, 1), got {prob!r}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if prob < p_low:
        q = math.sqrt(-2 * math.log(prob))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if prob > p_high:
        q = math.sqrt(-2 * math.log(1 - prob))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = prob - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def _panjer(lam: float, severity_mass: "np.ndarray") -> "np.ndarray":
    """The Panjer recursion for a compound Poisson on a grid."""
    bins = severity_mass.shape[0]
    total = np.zeros(bins)
    total[0] = math.exp(-lam * (1.0 - severity_mass[0]))
    weighted = severity_mass * np.arange(bins)
    for j in range(1, bins):
        total[j] = (lam / j) * float(
            np.dot(weighted[1 : j + 1], total[j - 1 :: -1])
        )
    return total
