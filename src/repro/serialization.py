"""Building framework objects from plain dictionaries (JSON-friendly).

The CLI and configuration files describe evaluations declaratively;
this module turns those descriptions into framework objects.  Strings
use the same vocabulary as the paper's tables (``"12 hr"``,
``"799 KB/s"``), and each ``kind`` tag names a class:

* workloads: a preset name (``"cello"``, ``"oltp"``, ``"web"``) or a
  full parameter dictionary;
* devices: ``disk_array`` / ``tape_library`` / ``vault`` /
  ``network_link`` / ``shipment``, or ``catalog: <factory>`` to use a
  Table 4 preset;
* techniques: ``primary`` / ``snapshot`` / ``split_mirror`` /
  ``sync_mirror`` / ``async_mirror`` / ``batched_async_mirror`` /
  ``backup`` / ``vaulting``;
* scenarios: ``object`` / ``array`` / ``building`` / ``site`` /
  ``region``;
* designs: a named case-study design or ``{name, levels: [...]}``.

Unknown keys raise immediately — a typo in a config should never
silently fall back to a default.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Mapping, Optional

from .casestudy import all_table7_designs
from .core.cost import CostBreakdown
from .core.dataloss import DataLossResult, LevelRange
from .core.hierarchy import StorageDesign
from .core.recovery import RecoveryPlan, RecoveryStep
from .core.results import Assessment
from .core.utilization import SystemUtilization
from .devices.base import DeviceUtilization, TechniqueUtilization
from .obs.provenance import EvaluationProvenance
from .devices import catalog as device_catalog
from .devices.base import Device
from .devices.costs import CostModel
from .devices.disk_array import DiskArray
from .devices.interconnect import NetworkLink, Shipment
from .devices.spares import SpareConfig, SpareType
from .devices.tape_library import TapeLibrary
from .devices.vault import Vault
from .exceptions import DesignError
from .scenarios.failures import FailureScenario, FailureScope
from .scenarios.locations import Location
from .scenarios.requirements import BusinessRequirements
from .techniques.backup import Backup, IncrementalKind, IncrementalPolicy
from .techniques.base import ProtectionTechnique
from .techniques.mirroring import AsyncMirror, BatchedAsyncMirror, SyncMirror
from .techniques.primary import PrimaryCopy
from .techniques.snapshot import VirtualSnapshot
from .techniques.split_mirror import SplitMirror
from .techniques.vaulting import RemoteVaulting
from .units import YEAR, parse_duration
from .workload.batch_curve import BatchUpdateCurve
from .workload.presets import cello, oltp_database, web_server
from .workload.spec import Workload

_WORKLOAD_PRESETS: "Dict[str, Callable[[], Workload]]" = {
    "cello": cello,
    "oltp": oltp_database,
    "web": web_server,
}


def _require(mapping: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in mapping:
        raise DesignError(f"{context}: missing required key {key!r}")
    return mapping[key]


def _check_keys(mapping: Mapping[str, Any], allowed: set, context: str) -> None:
    unknown = set(mapping) - allowed
    if unknown:
        raise DesignError(
            f"{context}: unknown keys {sorted(unknown)!r} "
            f"(allowed: {sorted(allowed)!r})"
        )


# ---------------------------------------------------------------------------
# Workloads.
# ---------------------------------------------------------------------------


def workload_from_spec(spec: Any) -> Workload:
    """A preset name or a full workload dictionary."""
    if isinstance(spec, str):
        try:
            return _WORKLOAD_PRESETS[spec]()
        except KeyError:
            raise DesignError(
                f"unknown workload preset {spec!r} "
                f"(available: {sorted(_WORKLOAD_PRESETS)})"
            ) from None
    _check_keys(
        spec,
        {
            "name",
            "data_capacity",
            "avg_access_rate",
            "avg_update_rate",
            "burst_multiplier",
            "batch_curve",
            "short_window_rate",
        },
        "workload",
    )
    curve = BatchUpdateCurve(
        _require(spec, "batch_curve", "workload"),
        short_window_rate=spec.get("short_window_rate"),
    )
    return Workload(
        name=spec.get("name", "custom"),
        data_capacity=_require(spec, "data_capacity", "workload"),
        avg_access_rate=_require(spec, "avg_access_rate", "workload"),
        avg_update_rate=_require(spec, "avg_update_rate", "workload"),
        burst_multiplier=spec.get("burst_multiplier", 1.0),
        batch_curve=curve,
    )


# ---------------------------------------------------------------------------
# Devices.
# ---------------------------------------------------------------------------


def _location_from_spec(spec: Optional[Mapping[str, Any]]) -> Optional[Location]:
    if spec is None:
        return None
    _check_keys(spec, {"region", "site", "building"}, "location")
    return Location(
        region=_require(spec, "region", "location"),
        site=_require(spec, "site", "location"),
        building=spec.get("building", "main"),
    )


def _spare_from_spec(spec: Optional[Mapping[str, Any]]) -> Optional[SpareConfig]:
    if spec is None:
        return None
    _check_keys(spec, {"type", "provisioning_time", "discount"}, "spare")
    spare_type = SpareType(_require(spec, "type", "spare"))
    if spare_type is SpareType.NONE:
        return SpareConfig.none()
    return SpareConfig(
        spare_type,
        provisioning_time=spec.get("provisioning_time", 0.0),
        discount=spec.get("discount", 0.0),
    )


def _cost_from_spec(spec: Optional[Mapping[str, Any]]) -> Optional[CostModel]:
    if spec is None:
        return None
    _check_keys(
        spec, {"fixed", "per_gb", "per_mb_per_sec", "per_shipment"}, "cost_model"
    )
    return CostModel.from_paper_units(
        fixed=spec.get("fixed", 0.0),
        per_gb=spec.get("per_gb", 0.0),
        per_mb_per_sec=spec.get("per_mb_per_sec", 0.0),
        per_shipment=spec.get("per_shipment", 0.0),
    )


_CATALOG_FACTORIES = {
    "midrange_disk_array": device_catalog.midrange_disk_array,
    "enterprise_tape_library": device_catalog.enterprise_tape_library,
    "offsite_vault": device_catalog.offsite_vault,
    "air_shipment": device_catalog.air_shipment,
    "oc3_links": device_catalog.oc3_links,
    "san_link": device_catalog.san_link,
}


def device_from_spec(spec: Mapping[str, Any]) -> Device:
    """A catalog preset reference or a fully specified device."""
    if "catalog" in spec:
        _check_keys(spec, {"catalog", "name", "link_count", "location"}, "device")
        factory_name = spec["catalog"]
        try:
            factory = _CATALOG_FACTORIES[factory_name]
        except KeyError:
            raise DesignError(
                f"unknown catalog device {factory_name!r} "
                f"(available: {sorted(_CATALOG_FACTORIES)})"
            ) from None
        kwargs: "Dict[str, Any]" = {}
        if "name" in spec:
            kwargs["name"] = spec["name"]
        if "link_count" in spec:
            if factory_name != "oc3_links":
                raise DesignError("link_count applies only to oc3_links")
            kwargs["link_count"] = spec["link_count"]
        location = _location_from_spec(spec.get("location"))
        if location is not None:
            kwargs["location"] = location
        return factory(**kwargs)

    kind = _require(spec, "kind", "device")
    common = {"kind", "name", "location", "spare", "cost_model"}
    location = _location_from_spec(spec.get("location"))
    spare = _spare_from_spec(spec.get("spare"))
    cost = _cost_from_spec(spec.get("cost_model"))
    extras: "Dict[str, Any]" = {}
    if location is not None:
        extras["location"] = location

    if kind == "disk_array":
        _check_keys(
            spec,
            common | {
                "max_capacity_slots", "slot_capacity", "max_bandwidth_slots",
                "slot_bandwidth", "enclosure_bandwidth", "raid_capacity_factor",
            },
            "disk_array",
        )
        return DiskArray(
            name=_require(spec, "name", "disk_array"),
            max_capacity_slots=_require(spec, "max_capacity_slots", "disk_array"),
            slot_capacity=_require(spec, "slot_capacity", "disk_array"),
            max_bandwidth_slots=_require(spec, "max_bandwidth_slots", "disk_array"),
            slot_bandwidth=_require(spec, "slot_bandwidth", "disk_array"),
            enclosure_bandwidth=_require(spec, "enclosure_bandwidth", "disk_array"),
            raid_capacity_factor=spec.get("raid_capacity_factor", 2.0),
            cost_model=cost,
            spare=spare,
            **extras,
        )
    if kind == "tape_library":
        _check_keys(
            spec,
            common | {
                "max_cartridges", "cartridge_capacity", "max_drives",
                "drive_bandwidth", "enclosure_bandwidth", "access_delay",
            },
            "tape_library",
        )
        return TapeLibrary(
            name=_require(spec, "name", "tape_library"),
            max_cartridges=_require(spec, "max_cartridges", "tape_library"),
            cartridge_capacity=_require(spec, "cartridge_capacity", "tape_library"),
            max_drives=_require(spec, "max_drives", "tape_library"),
            drive_bandwidth=_require(spec, "drive_bandwidth", "tape_library"),
            enclosure_bandwidth=_require(spec, "enclosure_bandwidth", "tape_library"),
            access_delay=spec.get("access_delay", "0.01 hr"),
            cost_model=cost,
            spare=spare,
            **extras,
        )
    if kind == "vault":
        _check_keys(
            spec, common | {"max_cartridges", "cartridge_capacity"}, "vault"
        )
        return Vault(
            name=_require(spec, "name", "vault"),
            max_cartridges=_require(spec, "max_cartridges", "vault"),
            cartridge_capacity=_require(spec, "cartridge_capacity", "vault"),
            cost_model=cost,
            spare=spare,
            **extras,
        )
    if kind == "network_link":
        _check_keys(
            spec,
            common | {"link_bandwidth", "link_count", "propagation_delay"},
            "network_link",
        )
        return NetworkLink(
            name=_require(spec, "name", "network_link"),
            link_bandwidth=_require(spec, "link_bandwidth", "network_link"),
            link_count=spec.get("link_count", 1),
            propagation_delay=spec.get("propagation_delay", 0.0),
            cost_model=cost,
            spare=spare,
            **extras,
        )
    if kind == "shipment":
        _check_keys(spec, common | {"delay"}, "shipment")
        return Shipment(
            name=_require(spec, "name", "shipment"),
            delay=spec.get("delay", "24 hr"),
            cost_model=cost,
            **extras,
        )
    raise DesignError(f"unknown device kind {kind!r}")


# ---------------------------------------------------------------------------
# Techniques.
# ---------------------------------------------------------------------------


def technique_from_spec(spec: Mapping[str, Any]) -> ProtectionTechnique:
    """Build a technique from its kind tag and parameters."""
    kind = _require(spec, "kind", "technique")
    if kind == "primary":
        _check_keys(spec, {"kind", "name"}, "primary")
        return PrimaryCopy(name=spec.get("name", "foreground workload"))
    if kind == "snapshot":
        _check_keys(
            spec, {"kind", "name", "accumulation_window", "retention_count"},
            "snapshot",
        )
        return VirtualSnapshot(
            accumulation_window=_require(spec, "accumulation_window", "snapshot"),
            retention_count=_require(spec, "retention_count", "snapshot"),
            name=spec.get("name", "virtual snapshot"),
        )
    if kind == "split_mirror":
        _check_keys(
            spec, {"kind", "name", "accumulation_window", "retention_count"},
            "split_mirror",
        )
        return SplitMirror(
            accumulation_window=_require(spec, "accumulation_window", "split_mirror"),
            retention_count=_require(spec, "retention_count", "split_mirror"),
            name=spec.get("name", "split mirror"),
        )
    if kind == "sync_mirror":
        _check_keys(spec, {"kind", "name"}, "sync_mirror")
        return SyncMirror(name=spec.get("name", "sync mirror"))
    if kind == "async_mirror":
        _check_keys(spec, {"kind", "name", "write_behind_lag"}, "async_mirror")
        return AsyncMirror(
            write_behind_lag=spec.get("write_behind_lag", "30 s"),
            name=spec.get("name", "async mirror"),
        )
    if kind == "batched_async_mirror":
        _check_keys(
            spec,
            {
                "kind", "name", "accumulation_window", "propagation_window",
                "hold_window", "retention_count",
            },
            "batched_async_mirror",
        )
        return BatchedAsyncMirror(
            accumulation_window=spec.get("accumulation_window", "1 min"),
            propagation_window=spec.get("propagation_window"),
            hold_window=spec.get("hold_window", 0.0),
            retention_count=spec.get("retention_count", 1),
            name=spec.get("name", "asyncB mirror"),
        )
    if kind == "backup":
        _check_keys(
            spec,
            {
                "kind", "name", "full_accumulation_window",
                "full_propagation_window", "full_hold_window",
                "retention_count", "incremental",
            },
            "backup",
        )
        incremental = None
        if spec.get("incremental") is not None:
            inc = spec["incremental"]
            _check_keys(
                inc,
                {
                    "kind", "count", "accumulation_window",
                    "propagation_window", "hold_window",
                },
                "incremental",
            )
            incremental = IncrementalPolicy(
                kind=IncrementalKind(_require(inc, "kind", "incremental")),
                count=_require(inc, "count", "incremental"),
                accumulation_window=_require(inc, "accumulation_window", "incremental"),
                propagation_window=_require(inc, "propagation_window", "incremental"),
                hold_window=inc.get("hold_window", 0.0),
            )
        return Backup(
            full_accumulation_window=_require(
                spec, "full_accumulation_window", "backup"
            ),
            full_propagation_window=_require(
                spec, "full_propagation_window", "backup"
            ),
            full_hold_window=spec.get("full_hold_window", 0.0),
            retention_count=spec.get("retention_count", 1),
            incremental=incremental,
            name=spec.get("name", "backup"),
        )
    if kind == "vaulting":
        _check_keys(
            spec,
            {
                "kind", "name", "accumulation_window", "propagation_window",
                "hold_window", "retention_count",
            },
            "vaulting",
        )
        return RemoteVaulting(
            accumulation_window=_require(spec, "accumulation_window", "vaulting"),
            propagation_window=_require(spec, "propagation_window", "vaulting"),
            hold_window=_require(spec, "hold_window", "vaulting"),
            retention_count=_require(spec, "retention_count", "vaulting"),
            name=spec.get("name", "remote vaulting"),
        )
    raise DesignError(f"unknown technique kind {kind!r}")


# ---------------------------------------------------------------------------
# Designs, scenarios and requirements.
# ---------------------------------------------------------------------------


def design_from_spec(spec: Any) -> StorageDesign:
    """A named case-study design or a full ``{name, levels}`` dictionary.

    Devices may be shared across levels by giving them an ``id`` and
    referring to it with ``{"ref": "<id>"}`` (the split-mirror level
    lives on the primary array this way).
    """
    if isinstance(spec, str):
        designs = all_table7_designs()
        if spec not in designs:
            raise DesignError(
                f"unknown named design {spec!r} (available: {sorted(designs)})"
            )
        return designs[spec]
    _check_keys(spec, {"name", "levels", "recovery_facility"}, "design")
    design = StorageDesign(
        _require(spec, "name", "design"),
        recovery_facility=_spare_from_spec(spec.get("recovery_facility")),
    )
    devices_by_id: "Dict[str, Device]" = {}

    def resolve_device(device_spec: Any, context: str) -> Device:
        if device_spec is None:
            raise DesignError(f"{context}: device required")
        if "ref" in device_spec:
            ref = device_spec["ref"]
            if ref not in devices_by_id:
                raise DesignError(f"{context}: unknown device ref {ref!r}")
            return devices_by_id[ref]
        local = dict(device_spec)
        device_id = local.pop("id", None)
        device = device_from_spec(local)
        if device_id is not None:
            devices_by_id[device_id] = device
        return device

    for index, level_spec in enumerate(_require(spec, "levels", "design")):
        _check_keys(
            level_spec,
            {"technique", "store", "transport", "feeds_from"},
            f"level {index}",
        )
        technique = technique_from_spec(_require(level_spec, "technique", f"level {index}"))
        store = resolve_device(_require(level_spec, "store", f"level {index}"), f"level {index}")
        transport = None
        if level_spec.get("transport") is not None:
            transport = resolve_device(level_spec["transport"], f"level {index}")
        design.add_level(
            technique,
            store=store,
            transport=transport,
            feeds_from=level_spec.get("feeds_from"),
        )
    return design


def scenario_from_spec(spec: Any) -> FailureScenario:
    """A scope-name string or a full scenario dictionary."""
    if isinstance(spec, str):
        spec = {"scope": spec}
    _check_keys(
        spec,
        {"scope", "failed_device", "failed_location", "recovery_target_age",
         "object_size"},
        "scenario",
    )
    scope = FailureScope(_require(spec, "scope", "scenario"))
    defaults: "Dict[str, Any]" = {}
    if scope is FailureScope.DISK_ARRAY:
        defaults["failed_device"] = spec.get("failed_device", "primary-array")
    if scope is FailureScope.DATA_OBJECT:
        defaults["object_size"] = spec.get("object_size", "1 MB")
    return FailureScenario(
        scope=scope,
        failed_device=defaults.get("failed_device", spec.get("failed_device")),
        failed_location=_location_from_spec(spec.get("failed_location")),
        recovery_target_age=spec.get("recovery_target_age", 0.0),
        object_size=defaults.get("object_size", spec.get("object_size")),
    )


def requirements_from_spec(spec: Mapping[str, Any]) -> BusinessRequirements:
    """Penalty rates in $/hour plus optional RTO/RPO."""
    _check_keys(
        spec,
        {"unavailability_per_hour", "loss_per_hour", "rto", "rpo"},
        "requirements",
    )
    return BusinessRequirements.per_hour(
        unavailability_dollars_per_hour=_require(
            spec, "unavailability_per_hour", "requirements"
        ),
        loss_dollars_per_hour=_require(spec, "loss_per_hour", "requirements"),
        rto=spec.get("rto"),
        rpo=spec.get("rpo"),
    )


# ---------------------------------------------------------------------------
# Provenance records.
# ---------------------------------------------------------------------------


def provenance_to_dict(provenance: EvaluationProvenance) -> "Dict[str, Any]":
    """An assessment's provenance record as a JSON-friendly dictionary."""
    return provenance.to_dict()


def provenance_from_spec(spec: Mapping[str, Any]) -> EvaluationProvenance:
    """Rebuild a provenance record from its dictionary form.

    Unlike the strict spec parsers above, unknown keys are *ignored*:
    provenance is an output record, so one written by a newer version
    (with extra fields) must still load on this one.
    """
    return EvaluationProvenance.from_dict(spec)


# ---------------------------------------------------------------------------
# Canonical JSON.
# ---------------------------------------------------------------------------


def canonical_json(obj: Any) -> str:
    """The canonical JSON text of a JSON-able value.

    Keys are sorted and no whitespace is emitted, so two structurally
    equal values always yield byte-identical text — the property the
    engine's content-addressed cache keys rely on.  Non-finite floats
    are emitted in Python's ``Infinity``/``NaN`` extension (the text is
    hashed and re-read by this package, never by a strict parser).
    Non-JSON objects raise ``TypeError`` rather than being coerced.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


# ---------------------------------------------------------------------------
# Assessment records: full round-trip of evaluation *outputs*.
#
# Spec parsing above is strict (a typo must raise); these are output
# records like provenance, so loading tolerates exactly the shapes this
# version writes.  The engine's persistent result cache stores these.
# ---------------------------------------------------------------------------


def location_to_dict(location: Location) -> "Dict[str, Any]":
    """A location as the same dictionary shape the spec parser accepts."""
    return {
        "region": location.region,
        "site": location.site,
        "building": location.building,
    }


def scenario_to_dict(scenario: FailureScenario) -> "Dict[str, Any]":
    """A failure scenario as a plain dictionary (base units)."""
    return {
        "scope": scenario.scope.value,
        "failed_device": scenario.failed_device,
        "failed_location": (
            None
            if scenario.failed_location is None
            else location_to_dict(scenario.failed_location)
        ),
        "recovery_target_age": scenario.recovery_target_age,
        "object_size": scenario.object_size,
    }


def scenario_from_dict(data: Mapping[str, Any]) -> FailureScenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output."""
    return FailureScenario(
        scope=FailureScope(data["scope"]),
        failed_device=data.get("failed_device"),
        failed_location=_location_from_spec(data.get("failed_location")),
        recovery_target_age=data.get("recovery_target_age", 0.0),
        object_size=data.get("object_size"),
    )


def requirements_to_dict(requirements: BusinessRequirements) -> "Dict[str, Any]":
    """Business requirements with rates in base units ($/second)."""
    return {
        "unavailability_penalty_rate": requirements.unavailability_penalty_rate,
        "loss_penalty_rate": requirements.loss_penalty_rate,
        "rto": requirements.rto,
        "rpo": requirements.rpo,
    }


def requirements_from_dict(data: Mapping[str, Any]) -> BusinessRequirements:
    """Rebuild requirements from :func:`requirements_to_dict` output."""
    return BusinessRequirements(
        unavailability_penalty_rate=data["unavailability_penalty_rate"],
        loss_penalty_rate=data["loss_penalty_rate"],
        rto=data.get("rto"),
        rpo=data.get("rpo"),
    )


def utilization_to_dict(utilization: SystemUtilization) -> "Dict[str, Any]":
    """The full utilization picture, per-device reports included."""
    return {
        "devices": [
            {
                "device_name": report.device_name,
                "bandwidth_demand": report.bandwidth_demand,
                "bandwidth_utilization": report.bandwidth_utilization,
                "capacity_demand_raw": report.capacity_demand_raw,
                "capacity_demand_logical": report.capacity_demand_logical,
                "capacity_utilization": report.capacity_utilization,
                "by_technique": [
                    {
                        "technique": share.technique,
                        "bandwidth": share.bandwidth,
                        "bandwidth_utilization": share.bandwidth_utilization,
                        "capacity": share.capacity,
                        "capacity_utilization": share.capacity_utilization,
                    }
                    for share in report.by_technique
                ],
            }
            for report in utilization.devices
        ],
        "max_capacity_utilization": utilization.max_capacity_utilization,
        "max_capacity_device": utilization.max_capacity_device,
        "max_bandwidth_utilization": utilization.max_bandwidth_utilization,
        "max_bandwidth_device": utilization.max_bandwidth_device,
    }


def utilization_from_dict(data: Mapping[str, Any]) -> SystemUtilization:
    """Rebuild utilization from :func:`utilization_to_dict` output."""
    return SystemUtilization(
        devices=tuple(
            DeviceUtilization(
                device_name=report["device_name"],
                bandwidth_demand=report["bandwidth_demand"],
                bandwidth_utilization=report["bandwidth_utilization"],
                capacity_demand_raw=report["capacity_demand_raw"],
                capacity_demand_logical=report["capacity_demand_logical"],
                capacity_utilization=report["capacity_utilization"],
                by_technique=tuple(
                    TechniqueUtilization(
                        technique=share["technique"],
                        bandwidth=share["bandwidth"],
                        bandwidth_utilization=share["bandwidth_utilization"],
                        capacity=share["capacity"],
                        capacity_utilization=share["capacity_utilization"],
                    )
                    for share in report.get("by_technique", ())
                ),
            )
            for report in data["devices"]
        ),
        max_capacity_utilization=data["max_capacity_utilization"],
        max_capacity_device=data.get("max_capacity_device"),
        max_bandwidth_utilization=data["max_bandwidth_utilization"],
        max_bandwidth_device=data.get("max_bandwidth_device"),
    )


def data_loss_to_dict(loss: DataLossResult) -> "Dict[str, Any]":
    """A data-loss result with the source level flattened to its identity."""
    return {
        "source_index": loss.source_index,
        "source_technique": loss.source_technique,
        "data_loss": loss.data_loss,
        "total_loss": loss.total_loss,
        "target_age": loss.target_age,
        "ranges": [
            {
                "level_index": rng.level_index,
                "technique_name": rng.technique_name,
                "newest_age": rng.newest_age,
                "oldest_age": rng.oldest_age,
            }
            for rng in loss.ranges
        ],
    }


def data_loss_from_dict(data: Mapping[str, Any]) -> DataLossResult:
    """Rebuild a data-loss result (``source_level`` itself is not
    restorable — the identity fields carry its name and index)."""
    return DataLossResult(
        source_level=None,
        data_loss=data["data_loss"],
        total_loss=data["total_loss"],
        target_age=data["target_age"],
        ranges=tuple(
            LevelRange(
                level_index=rng["level_index"],
                technique_name=rng["technique_name"],
                newest_age=rng["newest_age"],
                oldest_age=rng["oldest_age"],
            )
            for rng in data.get("ranges", ())
        ),
        source_index=data.get("source_index"),
        source_technique=data.get("source_technique"),
    )


def recovery_plan_to_dict(plan: RecoveryPlan) -> "Dict[str, Any]":
    """A recovery plan, steps and all (enough to re-render Figure 4)."""
    return {
        "source_level_index": plan.source_level_index,
        "source_name": plan.source_name,
        "recovery_size": plan.recovery_size,
        "recovery_time": plan.recovery_time,
        "steps": [
            {
                "label": step.label,
                "kind": step.kind,
                "start": step.start,
                "end": step.end,
                "devices": list(step.devices),
            }
            for step in plan.steps
        ],
    }


def recovery_plan_from_dict(data: Mapping[str, Any]) -> RecoveryPlan:
    """Rebuild a recovery plan from :func:`recovery_plan_to_dict` output."""
    return RecoveryPlan(
        source_level_index=data["source_level_index"],
        source_name=data["source_name"],
        recovery_size=data["recovery_size"],
        steps=tuple(
            RecoveryStep(
                label=step["label"],
                kind=step["kind"],
                start=step["start"],
                end=step["end"],
                devices=tuple(step.get("devices", ())),
            )
            for step in data.get("steps", ())
        ),
        recovery_time=data["recovery_time"],
    )


def cost_breakdown_to_dict(costs: CostBreakdown) -> "Dict[str, Any]":
    """Outlays by technique plus the penalty terms."""
    return {
        "outlays_by_technique": dict(costs.outlays_by_technique),
        "outage_penalty": costs.outage_penalty,
        "loss_penalty": costs.loss_penalty,
    }


def cost_breakdown_from_dict(data: Mapping[str, Any]) -> CostBreakdown:
    """Rebuild a cost breakdown from :func:`cost_breakdown_to_dict` output."""
    return CostBreakdown(
        outlays_by_technique=dict(data["outlays_by_technique"]),
        outage_penalty=data["outage_penalty"],
        loss_penalty=data["loss_penalty"],
    )


def assessment_to_dict(assessment: Assessment) -> "Dict[str, Any]":
    """One full assessment as a JSON-friendly dictionary.

    Everything reports and rankings read — the four output metrics, the
    per-device utilization rows, the recovery timeline, the cost
    breakdown and the provenance record — survives the round trip.
    """
    return {
        "design_name": assessment.design_name,
        "scenario": scenario_to_dict(assessment.scenario),
        "requirements": requirements_to_dict(assessment.requirements),
        "utilization": utilization_to_dict(assessment.utilization),
        "data_loss": data_loss_to_dict(assessment.data_loss),
        "recovery": (
            None
            if assessment.recovery is None
            else recovery_plan_to_dict(assessment.recovery)
        ),
        "costs": cost_breakdown_to_dict(assessment.costs),
        "provenance": (
            None
            if assessment.provenance is None
            else assessment.provenance.to_dict()
        ),
    }


def assessment_from_dict(data: Mapping[str, Any]) -> Assessment:
    """Rebuild an assessment from :func:`assessment_to_dict` output."""
    provenance = data.get("provenance")
    recovery = data.get("recovery")
    return Assessment(
        design_name=data["design_name"],
        scenario=scenario_from_dict(data["scenario"]),
        requirements=requirements_from_dict(data["requirements"]),
        utilization=utilization_from_dict(data["utilization"]),
        data_loss=data_loss_from_dict(data["data_loss"]),
        recovery=None if recovery is None else recovery_plan_from_dict(recovery),
        costs=cost_breakdown_from_dict(data["costs"]),
        provenance=(
            None if provenance is None else EvaluationProvenance.from_dict(provenance)
        ),
    )


# ---------------------------------------------------------------------------
# Scenario ensembles: rated-scenario specs for the risk layer.
#
# Strict spec parsing, like the design/scenario parsers above.  The
# risk package imports this module, so everything here imports
# ``repro.risk`` lazily.
# ---------------------------------------------------------------------------


def _event_rate_from_spec(value: Any, context: str) -> float:
    """An occurrence rate in events/second.

    Strings carry their unit (``"0.5/yr"``, ``"2/wk"``); bare numbers
    are events per *second* like every other bare quantity in a spec.
    """
    from .units import UnitError, parse_event_rate

    try:
        return parse_event_rate(value)
    except UnitError as error:
        raise DesignError(f"{context}: {error}") from error


def ensemble_from_spec(spec: Mapping[str, Any]) -> "Any":
    """Build a :class:`repro.risk.ScenarioEnsemble` from its spec.

    The spec groups members by how their rates arise::

        {"name": "mixed",
         "members": [
             {"id": "array", "scenario": "array", "rate": "0.5/yr"},
             {"id": "raid", "scenario": "array",
              "kofn": {"n": 8, "k": 6, "unit_rate": "2/yr",
                       "repair_time": "8 hr", "repair": "parallel"}}],
         "correlated": [
             {"id": "array-bk", "rate": "0.5/yr", "fraction": 0.25,
              "base": "array", "correlated": "building"}],
         "cascades": [
             {"id": "site", "rate": "0.01/yr", "primary": "array",
              "escalated": "site", "secondary_rate": "0.5/yr"}],
         "generate": {"object_grid": {"count": 1000,
                                      "total_rate": "12/yr"}}}

    Scenario references reuse :func:`scenario_from_spec` (scope-name
    strings or full dictionaries).  Each declared member's rate comes
    either from an explicit ``rate`` or from a ``kofn`` redundancy
    model — exactly one.  A cascade takes exactly one of
    ``secondary_rate`` / ``probability``.  ``generate`` appends the
    members of a generated ensemble (currently ``object_grid``).
    """
    from .risk import (
        CascadeSpec,
        EnsembleMember,
        KofNModel,
        ScenarioEnsemble,
        correlated_pair,
        object_corruption_grid,
    )

    _check_keys(
        spec,
        {"name", "members", "correlated", "cascades", "generate"},
        "ensemble",
    )
    name = _require(spec, "name", "ensemble")
    members: "List[Any]" = []

    for index, member_spec in enumerate(spec.get("members", ())):
        context = f"ensemble member {index}"
        _check_keys(member_spec, {"id", "scenario", "rate", "kofn"}, context)
        member_id = _require(member_spec, "id", context)
        scenario = scenario_from_spec(_require(member_spec, "scenario", context))
        has_rate = "rate" in member_spec
        has_kofn = "kofn" in member_spec
        if has_rate == has_kofn:
            raise DesignError(
                f"{context} ({member_id!r}): needs exactly one of "
                "'rate' or 'kofn'"
            )
        if has_rate:
            rate = _event_rate_from_spec(member_spec["rate"], context)
            members.append(EnsembleMember(member_id, scenario, rate))
        else:
            kofn_spec = member_spec["kofn"]
            _check_keys(
                kofn_spec,
                {"n", "k", "unit_rate", "repair_time", "repair"},
                f"{context} kofn",
            )
            model = KofNModel(
                n=_require(kofn_spec, "n", f"{context} kofn"),
                k=_require(kofn_spec, "k", f"{context} kofn"),
                unit_rate=_event_rate_from_spec(
                    _require(kofn_spec, "unit_rate", f"{context} kofn"),
                    f"{context} kofn",
                ),
                repair_time=parse_duration(
                    _require(kofn_spec, "repair_time", f"{context} kofn")
                ),
                repair=kofn_spec.get("repair", "parallel"),
            )
            members.append(model.member(member_id, scenario))

    for index, pair_spec in enumerate(spec.get("correlated", ())):
        context = f"ensemble correlated {index}"
        _check_keys(
            pair_spec,
            {"id", "rate", "fraction", "base", "correlated"},
            context,
        )
        members.extend(
            correlated_pair(
                _require(pair_spec, "id", context),
                scenario_from_spec(_require(pair_spec, "base", context)),
                scenario_from_spec(_require(pair_spec, "correlated", context)),
                _event_rate_from_spec(
                    _require(pair_spec, "rate", context), context
                ),
                _require(pair_spec, "fraction", context),
            )
        )

    cascades: "List[Any]" = []
    for index, cascade_spec in enumerate(spec.get("cascades", ())):
        context = f"ensemble cascade {index}"
        _check_keys(
            cascade_spec,
            {"id", "rate", "primary", "escalated", "secondary_rate",
             "probability"},
            context,
        )
        secondary = cascade_spec.get("secondary_rate")
        cascades.append(
            CascadeSpec(
                member_id=_require(cascade_spec, "id", context),
                primary=scenario_from_spec(
                    _require(cascade_spec, "primary", context)
                ),
                occurrence_rate=_event_rate_from_spec(
                    _require(cascade_spec, "rate", context), context
                ),
                escalated=scenario_from_spec(
                    _require(cascade_spec, "escalated", context)
                ),
                secondary_rate=(
                    None
                    if secondary is None
                    else _event_rate_from_spec(secondary, context)
                ),
                probability=cascade_spec.get("probability"),
            )
        )

    generate = spec.get("generate")
    if generate is not None:
        _check_keys(generate, {"object_grid"}, "ensemble generate")
        grid_spec = _require(generate, "object_grid", "ensemble generate")
        _check_keys(
            grid_spec,
            {"count", "total_rate", "distinct_ages", "max_age",
             "object_size"},
            "object_grid",
        )
        grid = object_corruption_grid(
            count=_require(grid_spec, "count", "object_grid"),
            total_rate_per_year=_event_rate_from_spec(
                _require(grid_spec, "total_rate", "object_grid"),
                "object_grid",
            ) * YEAR,
            distinct_ages=grid_spec.get("distinct_ages", 64),
            max_age=grid_spec.get("max_age", "1 wk"),
            object_size=grid_spec.get("object_size", "1 MB"),
        )
        members.extend(grid.members)

    return ScenarioEnsemble(
        name=name, members=tuple(members), cascades=tuple(cascades)
    )


def ensemble_to_dict(ensemble: "Any") -> "Dict[str, Any]":
    """An ensemble as a JSON-friendly output record.

    An *output* shape (like the assessment records above): every member
    fully expanded with its concrete rate — k-out-of-n models and
    generators have already been applied, so the record feeds reports
    and diffs, not :func:`ensemble_from_spec`.
    """
    return {
        "name": ensemble.name,
        "members": [
            {
                "id": member.member_id,
                "scenario": scenario_to_dict(member.scenario),
                "rate_per_year": member.rate_per_year,
            }
            for member in ensemble.members
        ],
        "cascades": [
            {
                "id": cascade.member_id,
                "primary": scenario_to_dict(cascade.primary),
                "escalated": scenario_to_dict(cascade.escalated),
                "rate_per_year": cascade.occurrence_rate * YEAR,
                "secondary_rate_per_year": (
                    None
                    if cascade.secondary_rate is None
                    else cascade.secondary_rate * YEAR
                ),
                "probability": cascade.probability,
            }
            for cascade in ensemble.cascades
        ],
    }
