"""Figure 1 — the example storage system design.

Regenerates the paper's hierarchy diagram (primary copy -> split
mirrors -> tape backup -> remote vault) as ASCII art and checks its
structure: level ordering, device bindings and transports.
"""

from repro import casestudy


def _render():
    design = casestudy.baseline_design()
    return design, design.render_hierarchy()


def test_figure1_design_hierarchy(benchmark):
    design, art = benchmark(_render)
    print()
    print(art)

    lines = art.splitlines()
    assert "storage design: baseline" in lines[0]
    assert "level 0" in lines[1] and "primary copy" in lines[1]
    assert "level 1" in lines[2] and "split" in lines[2]
    assert "level 2" in lines[3] and "tape-library" in lines[3]
    assert "level 3" in lines[4] and "vault" in lines[4]

    # Structural facts of Figure 1.
    assert design.level(1).store is design.level(0).store
    assert design.level(2).transport.name == "san"
    assert design.level(3).transport.name == "air-shipment"
    assert not design.level(3).store.location.same_region(
        design.level(0).store.location
    )
