"""Table 5 — normal-mode bandwidth and capacity utilization.

Regenerates the baseline configuration's per-device, per-technique
utilization and checks every percentage against the paper's row values.
"""

import pytest

from repro import casestudy
from repro.core import compute_utilization
from repro.core.demands import register_design_demands
from repro.reporting import utilization_report
from repro.units import GB, MB, TB

#: Paper Table 5 values: (technique, bw fraction, cap fraction).
PAPER_ARRAY_ROWS = {
    "foreground workload": (0.002, 0.146),
    "split mirror": (0.006, 0.728),
    "backup": (0.016, 0.0),
}


def _compute(workload):
    design = casestudy.baseline_design()
    register_design_demands(design, workload)
    return compute_utilization(design, strict=True)


def test_table5_normal_mode_utilization(benchmark, workload):
    utilization = benchmark(_compute, workload)
    print()
    print(utilization_report(utilization, title="Table 5: normal mode utilization"))

    array = utilization.device("primary-array")
    assert array.bandwidth_utilization == pytest.approx(0.024, abs=0.002)
    assert array.capacity_utilization == pytest.approx(0.874, abs=0.005)
    assert array.bandwidth_demand == pytest.approx(12.4 * MB, rel=0.03)
    assert array.capacity_demand_logical == pytest.approx(8.0 * TB, rel=0.01)

    per_technique = {t.technique: t for t in array.by_technique}
    for name, (bw, cap) in PAPER_ARRAY_ROWS.items():
        assert per_technique[name].bandwidth_utilization == pytest.approx(
            bw, abs=0.002
        ), name
        assert per_technique[name].capacity_utilization == pytest.approx(
            cap, abs=0.005
        ), name

    library = utilization.device("tape-library")
    assert library.bandwidth_utilization == pytest.approx(0.034, abs=0.002)
    assert library.capacity_utilization == pytest.approx(0.034, abs=0.002)
    assert library.bandwidth_demand == pytest.approx(8.1 * MB, rel=0.02)
    assert library.capacity_demand_logical == pytest.approx(6.6 * TB, rel=0.02)

    vault = utilization.device("vault")
    assert vault.bandwidth_utilization == 0.0
    assert vault.capacity_utilization == pytest.approx(0.026, abs=0.002)
    assert vault.capacity_demand_logical == pytest.approx(51.8 * TB, rel=0.02)

    assert utilization.max_capacity_device == "primary-array"
    assert utilization.feasible
