"""Simulation validation — the paper's future-work item, realized.

Runs the discrete-event simulator over the baseline design, injects
failures by sweep, at random, and adversarially, and compares the
measured data loss against the analytic worst-case bound: every sample
must respect the bound, the adversarial campaign must achieve it
(tightness ~1.0), and the mean must sit well below it (the worst case
is a worst case).
"""

import pytest

from repro import casestudy
from repro.core.demands import register_design_demands
from repro.reporting import Table
from repro.scenarios import FailureScenario
from repro.simulation import (
    DependabilitySimulator,
    adversarial_times,
    random_times,
    summarize_losses,
    sweep_times,
)
from repro.units import HOUR, WEEK
from repro.workload.presets import cello


def _campaign():
    design = casestudy.baseline_design()
    register_design_demands(design, cello())
    simulator = DependabilitySimulator(design, horizon=320 * WEEK)
    simulator.build()
    scenario = FailureScenario.array_failure("primary-array")
    start, end = simulator.steady_state_window()
    campaigns = {
        "sweep (300)": simulator.measure_losses(
            scenario, sweep_times(start, end, 300)
        ),
        "random (300)": simulator.measure_losses(
            scenario, random_times(start, end, 300, seed=7)
        ),
        "adversarial": simulator.measure_losses(
            scenario, adversarial_times(simulator, 2, start, end)
        ),
    }
    return simulator, scenario, campaigns


def test_simulated_losses_validate_analytic_bound(benchmark):
    simulator, scenario, campaigns = benchmark(_campaign)
    bound = simulator.analytic_bound(scenario)

    table = Table(
        headers=["campaign", "samples", "max (hr)", "mean (hr)", "p95 (hr)",
                 "bound (hr)", "tightness"],
        title="Simulated vs analytic data loss (array failure, baseline)",
    )
    stats = {}
    for name, samples in campaigns.items():
        stats[name] = summarize_losses(samples)
        s = stats[name]
        table.add_row(
            name, s.count, f"{s.max_loss / HOUR:.1f}", f"{s.mean_loss / HOUR:.1f}",
            f"{s.p95_loss / HOUR:.1f}", f"{bound / HOUR:.1f}",
            f"{s.tightness(bound):.3f}",
        )
    print()
    print(table.render())

    assert bound == pytest.approx(217 * HOUR)
    for name, s in stats.items():
        assert s.total_loss_count == 0, name
        assert s.within_bound(bound), name
    # Adversarial injection realizes the worst case.
    assert stats["adversarial"].tightness(bound) > 0.99
    # Typical losses are far milder than the worst case.
    assert stats["sweep (300)"].mean_loss < 0.75 * bound
