"""Figure 4 — recovery time dependencies for a site disaster.

Regenerates the paper's recovery pipeline chart: tape shipment from the
vault, loading at the (re-provisioned) tape library, and data transfer
onto the (re-provisioned) primary array, with resource provisioning
proceeding in parallel with the shipment.  Asserts each dependency the
figure draws.
"""

import pytest

from repro import casestudy
from repro.core.demands import register_design_demands
from repro.core.recovery import plan_recovery
from repro.units import HOUR


def _plan(workload):
    design = casestudy.baseline_design()
    register_design_demands(design, workload)
    scenario = casestudy.site_failure_scenario()
    return plan_recovery(design, scenario, workload)


def test_figure4_recovery_timeline(benchmark, workload):
    plan = benchmark(_plan, workload)
    print()
    print(plan.render_timeline())

    steps = {step.kind: [] for step in plan.steps}
    for step in plan.steps:
        steps[step.kind].append(step)

    ship = steps["shipment"][0]
    load = steps["media-load"][0]
    transfer = steps["transfer"][0]
    provisions = steps["provision"]

    # "Tape shipment from the vault must proceed before the tapes can be
    # loaded at the local site's tape library."
    assert ship.start == 0.0
    assert ship.duration == pytest.approx(24 * HOUR)
    assert load.start >= ship.end

    # "Securing access to hosting facility resources can proceed in
    # parallel with the shipment of tapes."
    assert len(provisions) == 2  # library and array stand-ins
    for provision in provisions:
        assert provision.start == 0.0
        assert provision.duration == pytest.approx(9 * HOUR)
        assert provision.end < ship.end

    # "Data transfer to the primary array cannot begin until array
    # resources have been adequately reprovisioned" — and until the
    # tapes are loaded.
    assert transfer.start >= max(load.end, provisions[-1].end)

    # "Recovery completes once the full backup ... is transferred."
    assert plan.recovery_time == pytest.approx(transfer.end)
    assert plan.recovery_time == pytest.approx(26.4 * HOUR, rel=0.05)
    assert plan.source_name == "remote vaulting"
