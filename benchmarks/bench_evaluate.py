#!/usr/bin/env python3
"""Micro-benchmark of the evaluation hot paths, with an overhead gate.

Times ``evaluate``, ``evaluate_scenarios`` and ``optimize`` on the
DSN'04 cello case study in three configurations:

* **disabled** — the default no-op tracer/metrics (what production pays);
* **enabled** — a real :class:`~repro.obs.Tracer` and
  :class:`~repro.obs.MetricsRegistry` installed;
* an **estimated uninstrumented baseline**: the disabled time minus the
  measured per-call cost of a no-op span/metric emission times the
  number of emissions one call makes.  Direct A/B timing of "code with
  the call sites deleted" is impossible without patching sources, and
  the per-emission cost (~100 ns) times the emission count is a tight,
  noise-free bound on what the call sites add.

Writes ``BENCH_evaluate.json`` at the repo root and exits non-zero if
the estimated disabled-instrumentation overhead reaches 5% on any
benched operation.

Run:  python benchmarks/bench_evaluate.py
"""

import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import casestudy, obs  # noqa: E402
from repro.core.evaluate import evaluate, evaluate_scenarios  # noqa: E402
from repro.design import DesignSpace, candidate_designs, optimize  # noqa: E402
from repro.obs.export import span_records  # noqa: E402
from repro.workload.presets import cello  # noqa: E402

REPEATS = 30
OVERHEAD_THRESHOLD = 0.05


def _median_ms(fn, repeats=REPEATS) -> float:
    """Median wall-clock milliseconds of ``fn()`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    return statistics.median(times)


def _noop_emission_cost_ms() -> float:
    """Per-call milliseconds of one disabled span + one disabled counter."""
    tracer = obs.get_tracer()
    metrics = obs.get_metrics()
    assert not tracer.enabled and not metrics.enabled, "obs must be disabled"
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        with tracer.span("bench.noop"):
            metrics.inc("bench.noop")
    return (time.perf_counter() - t0) * 1e3 / n


def _emission_count(fn) -> int:
    """How many spans + metric emissions one ``fn()`` call makes."""
    tracer = obs.set_tracer(obs.Tracer())
    registry = obs.set_metrics(obs.MetricsRegistry())
    try:
        fn()
        spans = len(span_records(tracer))
        snapshot = registry.snapshot()
        metric_ops = int(sum(snapshot["counters"].values()))
        metric_ops += len(snapshot["gauges"])
        metric_ops += sum(h["count"] for h in snapshot["histograms"].values())
        return spans + metric_ops
    finally:
        obs.reset()


def bench_operations():
    """The benched operations: fresh inputs per call (ledgers are stateful)."""
    workload = cello()
    requirements = casestudy.case_study_requirements()
    scenarios = casestudy.case_study_scenarios()
    array_failure = casestudy.array_failure_scenario()

    def bench_evaluate():
        evaluate(casestudy.baseline_design(), workload, array_failure, requirements)

    def bench_evaluate_scenarios():
        evaluate_scenarios(
            casestudy.baseline_design(), workload, scenarios, requirements
        )

    def bench_optimize():
        optimize(
            candidate_designs(DesignSpace()),
            workload,
            [array_failure, casestudy.site_failure_scenario()],
            requirements,
        )

    return {
        "evaluate": bench_evaluate,
        "evaluate_scenarios": bench_evaluate_scenarios,
        "optimize": bench_optimize,
    }


def main() -> int:
    obs.reset()
    operations = bench_operations()
    noop_cost_ms = _noop_emission_cost_ms()

    results = {}
    worst_overhead = 0.0
    for name, fn in operations.items():
        disabled_ms = _median_ms(fn)
        with_obs = _emission_count(fn)
        tracer = obs.set_tracer(obs.Tracer())
        registry = obs.set_metrics(obs.MetricsRegistry())
        try:
            enabled_ms = _median_ms(fn)
        finally:
            obs.reset()
        overhead = (with_obs * noop_cost_ms) / disabled_ms
        worst_overhead = max(worst_overhead, overhead)
        results[name] = {
            "disabled_ms": round(disabled_ms, 4),
            "enabled_ms": round(enabled_ms, 4),
            "emissions_per_call": with_obs,
            "estimated_disabled_overhead": round(overhead, 6),
        }
        print(
            f"{name:>20}: disabled {disabled_ms:8.3f} ms | enabled "
            f"{enabled_ms:8.3f} ms | {with_obs:5d} emissions | "
            f"est. disabled overhead {overhead * 100:.3f}%"
        )

    payload = {
        "benchmark": "bench_evaluate",
        "workload": "cello",
        "repeats": REPEATS,
        "python": sys.version.split()[0],
        "noop_emission_cost_us": round(noop_cost_ms * 1e3, 4),
        "results": results,
        "overhead_gate": {
            "threshold": OVERHEAD_THRESHOLD,
            "worst_estimated_overhead": round(worst_overhead, 6),
            "pass": worst_overhead < OVERHEAD_THRESHOLD,
        },
    }
    out_path = REPO_ROOT / "BENCH_evaluate.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    if worst_overhead >= OVERHEAD_THRESHOLD:
        print(
            f"FAIL: estimated disabled-instrumentation overhead "
            f"{worst_overhead * 100:.2f}% >= {OVERHEAD_THRESHOLD * 100:.0f}%",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: estimated disabled-instrumentation overhead "
        f"{worst_overhead * 100:.3f}% < {OVERHEAD_THRESHOLD * 100:.0f}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
