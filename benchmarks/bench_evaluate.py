#!/usr/bin/env python3
"""Micro-benchmark of the evaluation hot paths, with an overhead gate.

Times ``evaluate``, ``evaluate_scenarios`` and ``optimize`` on the
DSN'04 cello case study in three configurations:

* **disabled** — the default no-op tracer/metrics (what production pays);
* **enabled** — a real :class:`~repro.obs.Tracer` and
  :class:`~repro.obs.MetricsRegistry` installed;
* an **estimated uninstrumented baseline**: the disabled time minus the
  measured per-call cost of a no-op span/metric emission times the
  number of emissions one call makes.  Direct A/B timing of "code with
  the call sites deleted" is impossible without patching sources, and
  the per-emission cost (~100 ns) times the emission count is a tight,
  noise-free bound on what the call sites add.

A fourth section benches the **parallel telemetry fabric**: the same
optimizer sweep on a worker pool with full telemetry live — worker
span/metric capture, capsule transport and merge, throttled progress
with run-ledger heartbeats.  Its gate is also an estimate built from
tightly-measured components (per-emission recording cost, capsule
pickle/unpickle, metric-state merge), because a direct on/off A/B of
a ~10 ms pooled sweep on a 1–2 core CI box is dominated by scheduler
jitter (the raw on/off medians and the per-run artifact-finalization
cost are still recorded, informationally).  Worker-side recording is
attributed ``/workers``: each worker records only its share of the
sweep, so that is what lands on the pooled critical path.

Writes ``BENCH_evaluate.json`` at the repo root and exits non-zero if
the estimated disabled-instrumentation overhead reaches 5% on any
benched operation, or the estimated live-fabric overhead of the
parallel telemetry sweep reaches 5%.

Run:  python benchmarks/bench_evaluate.py
"""

import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import casestudy, obs  # noqa: E402
from repro.core.evaluate import evaluate, evaluate_scenarios  # noqa: E402
from repro.design import DesignSpace, candidate_designs, optimize  # noqa: E402
from repro.obs.export import span_records  # noqa: E402
from repro.workload.presets import cello  # noqa: E402

REPEATS = 30
OVERHEAD_THRESHOLD = 0.05


def _median_ms(fn, repeats=REPEATS) -> float:
    """Median wall-clock milliseconds of ``fn()`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append((time.perf_counter() - t0) * 1e3)
    return statistics.median(times)


def _noop_emission_cost_ms() -> float:
    """Per-call milliseconds of one disabled span + one disabled counter."""
    tracer = obs.get_tracer()
    metrics = obs.get_metrics()
    assert not tracer.enabled and not metrics.enabled, "obs must be disabled"
    n = 100_000
    t0 = time.perf_counter()
    for _ in range(n):
        with tracer.span("bench.noop"):
            metrics.inc("bench.noop")
    return (time.perf_counter() - t0) * 1e3 / n


def _emission_count(fn) -> int:
    """How many spans + metric emissions one ``fn()`` call makes."""
    tracer = obs.set_tracer(obs.Tracer())
    registry = obs.set_metrics(obs.MetricsRegistry())
    try:
        fn()
        spans = len(span_records(tracer))
        snapshot = registry.snapshot()
        metric_ops = int(sum(snapshot["counters"].values()))
        metric_ops += len(snapshot["gauges"])
        metric_ops += sum(h["count"] for h in snapshot["histograms"].values())
        return spans + metric_ops
    finally:
        obs.reset()


def bench_operations():
    """The benched operations: fresh inputs per call (ledgers are stateful)."""
    workload = cello()
    requirements = casestudy.case_study_requirements()
    scenarios = casestudy.case_study_scenarios()
    array_failure = casestudy.array_failure_scenario()

    def bench_evaluate():
        evaluate(casestudy.baseline_design(), workload, array_failure, requirements)

    def bench_evaluate_scenarios():
        evaluate_scenarios(
            casestudy.baseline_design(), workload, scenarios, requirements
        )

    def bench_optimize():
        optimize(
            candidate_designs(DesignSpace()),
            workload,
            [array_failure, casestudy.site_failure_scenario()],
            requirements,
        )

    return {
        "evaluate": bench_evaluate,
        "evaluate_scenarios": bench_evaluate_scenarios,
        "optimize": bench_optimize,
    }


def _enabled_emission_costs_us():
    """Best-of-5 per-emission microseconds on *live* instruments:
    one recorded span, one counter increment, one histogram sample."""

    def best(fn, n):
        floor = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            fn(n)
            floor = min(floor, (time.perf_counter() - t0) / n * 1e6)
        return floor

    tracer = obs.Tracer()

    def spans(n):
        span = tracer.span
        for _ in range(n):
            with span("bench.noop"):
                pass
        tracer.clear()

    registry = obs.MetricsRegistry()

    def incs(n):
        inc = registry.inc
        for _ in range(n):
            inc("bench.noop")

    def observes(n):
        observe = registry.observe
        for _ in range(n):
            observe("bench.noop.hist", 0.5)

    return best(spans, 20_000), best(incs, 50_000), best(observes, 50_000)


def _best_ms(fn, repeats=20) -> float:
    """Best-of-N wall-clock milliseconds of ``fn()``."""
    floor = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        floor = min(floor, (time.perf_counter() - t0) * 1e3)
    return floor


def parallel_telemetry_section():
    """Bench the pooled optimizer sweep under the full telemetry fabric.

    Returns the ``optimize_parallel_telemetry`` result dict, including
    the estimated live-fabric overhead that the gate checks.
    """
    import io
    import os
    import pickle
    import shutil
    import tempfile

    from repro.engine import EngineConfig, warm_pool
    from repro.obs.context import TelemetryCapsule, merge_capsule
    from repro.obs.spans import pack_span

    workload = cello()
    requirements = casestudy.case_study_requirements()
    scenarios = casestudy.case_study_scenarios()
    candidates = candidate_designs(DesignSpace())
    # At least two workers even on a single-core box: the point is to
    # exercise the cross-process capsule path, which workers=1 (the
    # serial inline path) would bypass entirely.
    workers = max(2, min(4, os.cpu_count() or 1))
    config = EngineConfig(workers=workers)
    warm_pool(workers)

    def sweep(cfg=config):
        optimize(candidates, workload, scenarios, requirements, config=cfg)

    sweep()  # warm caches/imports outside the timed region
    off_ms = _median_ms(sweep)

    # One instrumented serial pass: emission counts for the estimate,
    # and the real span/metric payload for the transport measurement.
    tracer = obs.set_tracer(obs.Tracer())
    registry = obs.set_metrics(obs.MetricsRegistry())
    try:
        sweep(EngineConfig(workers=1))
        span_count = len(span_records(tracer))
        snapshot = registry.snapshot()
        counter_ops = int(sum(snapshot["counters"].values()))
        gauge_ops = len(snapshot["gauges"])
        observe_ops = sum(h["count"] for h in snapshot["histograms"].values())
        capsule = TelemetryCapsule(
            pid=0,
            run_id="bench",
            packed_spans=tuple(pack_span(root) for root in tracer.roots),
            metrics=registry.state(),
            span_count=span_count,
        )
    finally:
        obs.reset()

    # Parent-side transport: capsule pickle round-trip plus the merge
    # into live instruments (span adoption is deferred to export, so
    # the merge is the metric-state fold plus bookkeeping).
    blob = pickle.dumps(capsule)

    def transport():
        merge_capsule(pickle.loads(blob), tracer=obs.Tracer(), metrics=obs.MetricsRegistry())

    transport_ms = _best_ms(lambda: (pickle.dumps(capsule), transport()))

    span_us, counter_us, observe_us = _enabled_emission_costs_us()
    recording_ms = (
        span_count * span_us
        + (counter_ops + gauge_ops) * counter_us
        + observe_ops * observe_us
    ) / 1e3
    estimated = (recording_ms / workers + transport_ms) / off_ms

    # The measured on/off medians and the per-run artifact flush, for
    # the record (noisy on few-core boxes; not gated).
    run_dir = tempfile.mkdtemp(prefix="bench-telemetry-")
    ledger = obs.RunLedger(run_dir, argv=["bench_evaluate"])
    ledger.begin(extra={"benchmark": "optimize_parallel_telemetry"})
    final_instruments = {}

    def sweep_full_telemetry():
        final_instruments["tracer"] = obs.set_tracer(obs.Tracer())
        final_instruments["metrics"] = obs.set_metrics(obs.MetricsRegistry())
        obs.set_progress(obs.ProgressReporter(stream=io.StringIO(), ledger=ledger))
        try:
            sweep()
        finally:
            obs.reset()

    sweep_full_telemetry()  # warm
    on_ms = _median_ms(sweep_full_telemetry)
    t0 = time.perf_counter()
    ledger.finish(final_instruments["tracer"], final_instruments["metrics"])
    finalize_ms = (time.perf_counter() - t0) * 1e3
    shutil.rmtree(run_dir, ignore_errors=True)

    return {
        "workers": workers,
        "telemetry_off_ms": round(off_ms, 4),
        "telemetry_on_ms": round(on_ms, 4),
        "finalize_ms": round(finalize_ms, 4),
        "emissions": {
            "spans": span_count,
            "counter_ops": counter_ops + gauge_ops,
            "observe_ops": observe_ops,
        },
        "unit_costs_us": {
            "span": round(span_us, 4),
            "counter": round(counter_us, 4),
            "observe": round(observe_us, 4),
        },
        "worker_recording_ms": round(recording_ms, 4),
        "capsule_transport_ms": round(transport_ms, 4),
        "estimated_fabric_overhead": round(estimated, 6),
    }


def main() -> int:
    obs.reset()
    operations = bench_operations()
    noop_cost_ms = _noop_emission_cost_ms()

    results = {}
    worst_overhead = 0.0
    for name, fn in operations.items():
        disabled_ms = _median_ms(fn)
        with_obs = _emission_count(fn)
        tracer = obs.set_tracer(obs.Tracer())
        registry = obs.set_metrics(obs.MetricsRegistry())
        try:
            enabled_ms = _median_ms(fn)
        finally:
            obs.reset()
        overhead = (with_obs * noop_cost_ms) / disabled_ms
        worst_overhead = max(worst_overhead, overhead)
        results[name] = {
            "disabled_ms": round(disabled_ms, 4),
            "enabled_ms": round(enabled_ms, 4),
            "emissions_per_call": with_obs,
            "estimated_disabled_overhead": round(overhead, 6),
        }
        print(
            f"{name:>20}: disabled {disabled_ms:8.3f} ms | enabled "
            f"{enabled_ms:8.3f} ms | {with_obs:5d} emissions | "
            f"est. disabled overhead {overhead * 100:.3f}%"
        )

    telemetry = parallel_telemetry_section()
    fabric_overhead = telemetry["estimated_fabric_overhead"]
    print(
        f"{'optimize_parallel_telemetry':>27}: off {telemetry['telemetry_off_ms']:8.3f} ms"
        f" | on {telemetry['telemetry_on_ms']:8.3f} ms"
        f" | finalize {telemetry['finalize_ms']:6.3f} ms"
        f" | est. fabric overhead {fabric_overhead * 100:.3f}%"
    )

    payload = {
        "benchmark": "bench_evaluate",
        "workload": "cello",
        "repeats": REPEATS,
        "python": sys.version.split()[0],
        "noop_emission_cost_us": round(noop_cost_ms * 1e3, 4),
        "results": results,
        "overhead_gate": {
            "threshold": OVERHEAD_THRESHOLD,
            "worst_estimated_overhead": round(worst_overhead, 6),
            "pass": worst_overhead < OVERHEAD_THRESHOLD,
        },
        "optimize_parallel_telemetry": telemetry,
        "telemetry_overhead_gate": {
            "threshold": OVERHEAD_THRESHOLD,
            "estimated_fabric_overhead": fabric_overhead,
            "pass": fabric_overhead < OVERHEAD_THRESHOLD,
        },
    }
    out_path = REPO_ROOT / "BENCH_evaluate.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    failed = False
    if worst_overhead >= OVERHEAD_THRESHOLD:
        print(
            f"FAIL: estimated disabled-instrumentation overhead "
            f"{worst_overhead * 100:.2f}% >= {OVERHEAD_THRESHOLD * 100:.0f}%",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: estimated disabled-instrumentation overhead "
            f"{worst_overhead * 100:.3f}% < {OVERHEAD_THRESHOLD * 100:.0f}%"
        )
    if fabric_overhead >= OVERHEAD_THRESHOLD:
        print(
            f"FAIL: estimated live-fabric overhead "
            f"{fabric_overhead * 100:.2f}% >= {OVERHEAD_THRESHOLD * 100:.0f}%",
            file=sys.stderr,
        )
        failed = True
    else:
        print(
            f"OK: estimated live-fabric overhead "
            f"{fabric_overhead * 100:.3f}% < {OVERHEAD_THRESHOLD * 100:.0f}%"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
