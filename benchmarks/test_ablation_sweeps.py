"""Ablation benches for the design choices DESIGN.md calls out.

Three sweeps over the design knobs the case study varies implicitly:

* the batched-async mirror's accumulation window (loss vs link demand);
* WAN link provisioning (recovery time vs outlays — the generalized
  1-vs-10-link contrast of Table 7);
* spare type for the primary array (dedicated vs shared-facility:
  recovery time vs outlays).
"""

import pytest

from repro import casestudy, evaluate
from repro.design import (
    pareto_frontier,
    run_whatif,
    sweep_accumulation_window,
    sweep_link_count,
)
from repro.devices.spares import SpareConfig
from repro.reporting import Table
from repro.units import HOUR, MINUTE, format_duration, format_money


def _run_sweeps(workload, requirements):
    scenario = casestudy.array_failure_scenario()
    window_points = sweep_accumulation_window(
        ["1 min", "5 min", "30 min", "2 hr"], workload, scenario, requirements
    )
    link_points = sweep_link_count([1, 2, 5, 10], workload, scenario, requirements)

    spare_points = []
    for label, spare in (
        ("dedicated 60 s", SpareConfig.dedicated("60 s", 1.0)),
        ("shared 9 h", SpareConfig.shared("9 hr", 0.2)),
    ):
        design = casestudy._tape_design(
            f"baseline [{label} spare]",
            casestudy._baseline_split_mirror(),
            casestudy._baseline_backup(),
            casestudy._baseline_vaulting(),
        )
        design.levels[0].store.spare = spare
        assessment = evaluate(design, workload, scenario, requirements)
        spare_points.append((label, assessment))

    whatif = run_whatif(
        {
            name: (lambda d=factory: d())
            for name, factory in {
                "baseline": casestudy.baseline_design,
                "weekly vault, daily F": casestudy.weekly_vault_daily_fulls_design,
                "weekly vault, daily F, snapshot":
                    casestudy.weekly_vault_daily_fulls_snapshot_design,
                "asyncB mirror, 1 link":
                    (lambda: casestudy.async_batch_mirror_design(1)),
                "asyncB mirror, 10 links":
                    (lambda: casestudy.async_batch_mirror_design(10)),
            }.items()
        },
        workload,
        [casestudy.array_failure_scenario(), casestudy.site_failure_scenario()],
        requirements,
    )
    return window_points, link_points, spare_points, whatif


def test_ablation_sweeps(benchmark, workload, requirements):
    window_points, link_points, spare_points, whatif = benchmark(
        _run_sweeps, workload, requirements
    )

    table = Table(
        headers=["batch window", "data loss", "utilization", "total cost"],
        title="Ablation: asyncB accumulation window (array failure)",
    )
    for p in window_points:
        table.add_row(
            format_duration(p.parameter),
            format_duration(p.recent_data_loss),
            f"{p.system_utilization:.1%}",
            format_money(p.total_cost),
        )
    print()
    print(table.render())

    table = Table(
        headers=["links", "recovery time", "total cost"],
        title="Ablation: WAN link provisioning (array failure)",
    )
    for p in link_points:
        table.add_row(
            int(p.parameter),
            format_duration(p.recovery_time),
            format_money(p.total_cost),
        )
    print(table.render())

    table = Table(
        headers=["primary array spare", "recovery time", "outlays"],
        title="Ablation: spare type for the primary array (array failure)",
    )
    for label, assessment in spare_points:
        table.add_row(
            label,
            format_duration(assessment.recovery_time),
            format_money(assessment.costs.total_outlays),
        )
    print(table.render())

    # Window sweep: loss grows with the window; two windows' worth.
    losses = [p.recent_data_loss for p in window_points]
    assert losses == sorted(losses)
    assert losses[0] == pytest.approx(2 * MINUTE)
    assert losses[-1] == pytest.approx(4 * HOUR)

    # Link sweep: recovery time strictly improves, outlays strictly grow.
    times = [p.recovery_time for p in link_points]
    assert times == sorted(times, reverse=True)

    # Spare ablation: the shared spare is slower to recover but cheaper.
    dedicated, shared = spare_points[0][1], spare_points[1][1]
    assert shared.recovery_time > dedicated.recovery_time
    assert shared.costs.total_outlays < dedicated.costs.total_outlays

    # Pareto frontier over (worst RT, worst DL, outlays): the dominated
    # split-mirror variant drops; its cheaper snapshot twin survives.
    frontier = pareto_frontier(whatif)
    table = Table(
        headers=["design", "on frontier", "worst RT", "worst DL", "outlays"],
        title="Trade-space: Pareto frontier over Table 7 designs",
    )
    frontier_names = {r.design_name for r in frontier}
    for result in whatif:
        table.add_row(
            result.design_name,
            "yes" if result.design_name in frontier_names else "",
            format_duration(result.worst_recovery_time),
            format_duration(result.worst_data_loss),
            format_money(result.total_outlays),
        )
    print(table.render())
    assert "weekly vault, daily F, snapshot" in frontier_names
    assert "weekly vault, daily F" not in frontier_names
    assert "asyncB mirror, 1 link" in frontier_names
