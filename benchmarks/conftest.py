"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
times the underlying computation with pytest-benchmark, asserts the
shape agreements recorded in EXPERIMENTS.md, and prints the regenerated
artifact (visible with ``pytest benchmarks/ --benchmark-only -s``).
"""

import pytest

from repro import casestudy
from repro.workload.presets import cello


@pytest.fixture(scope="session")
def workload():
    return cello()


@pytest.fixture(scope="session")
def requirements():
    return casestudy.case_study_requirements()


@pytest.fixture(scope="session")
def scenarios():
    return casestudy.case_study_scenarios()
