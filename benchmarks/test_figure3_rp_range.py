"""Figures 2-3 — policy windows and the guaranteed range of RPs per level.

Figure 2 specifies the baseline's window parameters; Figure 3 derives
the range of retrieval points *guaranteed* present at a level:

    [now - ((retCnt - 1) * cyclePer + holdW + propW),
     now - (holdW + propW + accW)]

This bench regenerates both: it prints each level's windows and its
guaranteed range, and asserts the closed-form values for the baseline's
split mirror, tape backup and vault levels (12 h / 217 h / 1429 h
newest-RP ages — the same quantities that bound recent data loss).
"""

import pytest

from repro import casestudy
from repro.core.dataloss import level_range
from repro.reporting import Table
from repro.units import HOUR, WEEK, YEAR, format_duration


def _ranges():
    design = casestudy.baseline_design()
    return design, [level_range(design, lvl) for lvl in design.secondary_levels()]


def test_figure3_guaranteed_rp_ranges(benchmark):
    design, ranges = benchmark(_ranges)

    table = Table(
        headers=[
            "level", "technique", "newest guaranteed RP age",
            "oldest guaranteed RP age",
        ],
        title="Figure 3: guaranteed range of RPs per level",
    )
    for rng in ranges:
        table.add_row(
            rng.level_index,
            rng.technique_name,
            format_duration(rng.newest_age),
            format_duration(rng.oldest_age),
        )
    print()
    print(table.render())

    mirror, backup, vault = ranges

    # Split mirror: lag accW = 12 h; reach (retCnt-1)*cyclePer = 36 h.
    assert mirror.newest_age == pytest.approx(12 * HOUR)
    assert mirror.oldest_age == pytest.approx(36 * HOUR)

    # Backup: lag accW + holdW + propW = 168 + 1 + 48 = 217 h;
    # reach 3 weeks further back.
    assert backup.newest_age == pytest.approx(217 * HOUR)
    assert backup.oldest_age == pytest.approx(3 * WEEK + 49 * HOUR)

    # Vault: lag = upstream (49 h) + own accW + holdW + propW = 1429 h;
    # reach ~3 years.
    assert vault.newest_age == pytest.approx(1429 * HOUR)
    assert vault.oldest_age == pytest.approx(
        49 * HOUR + (4 * WEEK + 12 * HOUR + 24 * HOUR) + 38 * 4 * WEEK
    )
    assert vault.oldest_age > 2.9 * YEAR

    # The figure's nesting: deeper levels lag more and reach further.
    assert mirror.newest_age < backup.newest_age < vault.newest_age
    assert mirror.oldest_age < backup.oldest_age < vault.oldest_age
