"""Table 2 — workload characterization.

The paper measures the *cello* workgroup file server into five
parameters.  The original trace is proprietary, so this bench generates
a synthetic bursty trace (DESIGN.md's documented substitution), runs the
characterization pipeline over it, and prints the measured parameters
next to the paper's published cello values.  The assertions check the
qualitative signature the models depend on: update < access rate,
bursty writes, and a batch update rate that declines with the window.
"""

import pytest

from repro.reporting import Table
from repro.units import GB, HOUR, KB, MB, SECOND, format_rate, format_size
from repro.workload import (
    SyntheticWorkloadConfig,
    characterize_trace,
    generate_trace,
)

WINDOWS = ["1 min", "10 min", "30 min", "1 hr"]


def _characterize():
    config = SyntheticWorkloadConfig(
        data_capacity=4 * GB,
        duration=4 * HOUR,
        avg_access_rate=1028 * KB / SECOND,
        avg_update_rate=799 * KB / SECOND,
        burst_multiplier=10.0,
        hot_fraction=0.02,
        hot_weight=0.85,
    )
    trace = generate_trace(config, seed=2004)
    return config, trace, characterize_trace(trace, windows=WINDOWS, name="synthetic cello")


def test_table2_workload_characterization(benchmark):
    config, trace, measured = benchmark(_characterize)

    table = Table(
        headers=["parameter", "paper (cello)", "measured (synthetic)"],
        title="Table 2: workload characterization",
    )
    table.add_row("dataCap", "1360 GB", format_size(measured.data_capacity))
    table.add_row("avgAccessR", "1028 KB/s", format_rate(measured.avg_access_rate))
    table.add_row("avgUpdateR", "799 KB/s", format_rate(measured.avg_update_rate))
    table.add_row("burstM", "10x", f"{measured.burst_multiplier:.1f}x")
    for window in WINDOWS:
        table.add_row(
            f"batchUpdR({window})",
            "(declines: 727 -> 317 KB/s)",
            format_rate(measured.batch_update_rate(window)),
        )
    print()
    print(table.render())

    # Shape assertions: the cello signature.
    assert measured.avg_access_rate == pytest.approx(config.avg_access_rate, rel=0.15)
    assert measured.avg_update_rate == pytest.approx(config.avg_update_rate, rel=0.15)
    assert measured.avg_update_rate < measured.avg_access_rate
    assert measured.burst_multiplier > 2.0
    rates = [measured.batch_update_rate(w) for w in WINDOWS]
    assert rates[0] > rates[-1], "batch update rate must decline with the window"
