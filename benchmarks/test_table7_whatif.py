"""Table 7 — the seven what-if designs under array and site failures.

Regenerates the paper's full comparison grid and asserts its orderings
and crossovers: weekly vaulting slashes site-failure loss; incrementals
and daily fulls cut array-failure loss (37 h and 73 h exactly);
snapshots shave outlays at equal dependability; batched async mirroring
reduces loss to minutes; and — the paper's closing irony — the
single-link mirror has the lowest *total* cost of all seven designs
despite a 20+ hour recovery, because its outlays are so much lower.
"""

import pytest

from repro import casestudy
from repro.design import run_whatif
from repro.reporting import whatif_report
from repro.units import HOUR


def _run(workload, requirements):
    scenarios = [
        casestudy.array_failure_scenario(),
        casestudy.site_failure_scenario(),
    ]
    designs = {
        name: (lambda d=design_factory: d())
        for name, design_factory in {
            "baseline": casestudy.baseline_design,
            "weekly vault": casestudy.weekly_vault_design,
            "weekly vault, F+I": casestudy.weekly_vault_incrementals_design,
            "weekly vault, daily F": casestudy.weekly_vault_daily_fulls_design,
            "weekly vault, daily F, snapshot":
                casestudy.weekly_vault_daily_fulls_snapshot_design,
            "asyncB mirror, 1 link": lambda: casestudy.async_batch_mirror_design(1),
            "asyncB mirror, 10 links": lambda: casestudy.async_batch_mirror_design(10),
        }.items()
    }
    return run_whatif(designs, workload, scenarios, requirements)


#: Paper Table 7 data-loss values (hours) per design: (array DL, site DL).
PAPER_DATA_LOSS = {
    "baseline": (217, 1429),
    "weekly vault": (217, 253),
    "weekly vault, F+I": (73, 253),
    "weekly vault, daily F": (37, 217),
    "weekly vault, daily F, snapshot": (37, 217),
    "asyncB mirror, 1 link": (0.033, 0.033),
    "asyncB mirror, 10 links": (0.033, 0.033),
}


def test_table7_whatif_scenarios(benchmark, workload, requirements):
    results = benchmark(_run, workload, requirements)
    by_name = {r.design_name: r for r in results}

    grid = {r.design_name: r.assessments for r in results}
    labels = list(results[0].assessments.keys())
    print()
    print(whatif_report(grid, labels, title="Table 7: what-if scenarios"))

    # Exact data-loss agreements with the paper.
    for name, (array_dl, site_dl) in PAPER_DATA_LOSS.items():
        result = by_name[name]
        assert result.scenario("array").recent_data_loss == pytest.approx(
            array_dl * HOUR, rel=0.02
        ), name
        assert result.scenario("site").recent_data_loss == pytest.approx(
            site_dl * HOUR, rel=0.02
        ), name

    # Ordering claims.
    assert (
        by_name["weekly vault, F+I"].scenario("array").recovery_time
        > by_name["baseline"].scenario("array").recovery_time
    ), "restoring full + incremental takes longer than full alone"
    assert (
        by_name["weekly vault, daily F, snapshot"].total_outlays
        < by_name["weekly vault, daily F"].total_outlays
    ), "snapshots are cheaper than split mirrors"
    assert (
        by_name["asyncB mirror, 10 links"].scenario("array").recovery_time
        < by_name["asyncB mirror, 1 link"].scenario("array").recovery_time / 5
    ), "ten links transfer nearly ten times faster"
    assert (
        by_name["asyncB mirror, 10 links"].scenario("site").recovery_time
        > by_name["asyncB mirror, 10 links"].scenario("array").recovery_time
    ), "site recovery pays the 9 h shared-facility provisioning"

    # The paper's closing observation: the 1-link mirror has the lowest
    # total cost across the board.
    one_link = by_name["asyncB mirror, 1 link"]
    for name, result in by_name.items():
        if name == "asyncB mirror, 1 link":
            continue
        assert one_link.worst_total_cost < result.worst_total_cost, name
