"""Table 6 — worst-case recovery time and recent data loss.

Regenerates the baseline design's dependability under the three case
study failure scopes.  Data-loss values match the paper exactly (12 h,
217 h, 1429 h); recovery times match in structure (intra-array copy in
milliseconds; transfer-dominated array recovery; shipment-dominated site
recovery) with the absolute deltas recorded in EXPERIMENTS.md.
"""

import pytest

from repro import casestudy, evaluate_scenarios
from repro.reporting import dependability_report
from repro.units import HOUR

#: Paper Table 6: scenario fragment -> (source, RT bounds (s), DL hours).
PAPER_ROWS = {
    "object": ("split mirror", (0.002, 0.02), 12),
    "array": ("backup", (1 * HOUR, 3 * HOUR), 217),
    "site": ("remote vaulting", (24 * HOUR, 28 * HOUR), 1429),
}


def _evaluate(workload, scenarios, requirements):
    return evaluate_scenarios(
        casestudy.baseline_design(), workload, scenarios, requirements
    )


def test_table6_recovery_and_loss(benchmark, workload, scenarios, requirements):
    results = benchmark(_evaluate, workload, scenarios, requirements)
    print()
    print(dependability_report(results, title="Table 6: worst-case RT and DL"))

    for fragment, (source, (rt_lo, rt_hi), loss_hours) in PAPER_ROWS.items():
        assessment = next(a for k, a in results.items() if fragment in k)
        assert assessment.data_loss.source_name == source, fragment
        assert rt_lo <= assessment.recovery_time <= rt_hi, fragment
        assert assessment.recent_data_loss == pytest.approx(
            loss_hours * HOUR
        ), fragment

    # Deeper failure scopes recover from deeper levels, slower and with
    # more loss — the structural claim of the table.
    times = [a.recovery_time for a in results.values()]
    losses = [a.recent_data_loss for a in results.values()]
    assert times == sorted(times)
    assert losses == sorted(losses)
