"""Figure 5 — overall system cost for the baseline, per failure scenario.

Regenerates the outlay-by-technique breakdown plus penalties.  The
paper's qualitative claims are asserted: penalties (above all recent
data loss penalties) dominate for the array and site failures; outlays
split roughly evenly between the foreground workload, split mirroring
and tape backup, with negligible vaulting contribution.
"""

import pytest

from repro import casestudy, evaluate_scenarios
from repro.reporting import cost_breakdown_report, stacked_bar_chart
from repro.units import format_money


def _evaluate(workload, scenarios, requirements):
    return evaluate_scenarios(
        casestudy.baseline_design(), workload, scenarios, requirements
    )


def test_figure5_cost_breakdown(benchmark, workload, scenarios, requirements):
    results = benchmark(_evaluate, workload, scenarios, requirements)
    print()
    print(cost_breakdown_report(results, title="Figure 5: overall system cost"))
    print()
    segments = list(next(iter(results.values())).costs.outlays_by_technique)
    segments += ["outage penalty", "loss penalty"]
    rows = {}
    for label, assessment in results.items():
        row = dict(assessment.costs.outlays_by_technique)
        row["outage penalty"] = assessment.costs.outage_penalty
        row["loss penalty"] = assessment.costs.loss_penalty
        rows[label] = row
    print(
        stacked_bar_chart(
            rows,
            segment_order=segments,
            title="Figure 5 (chart form): cost per failure scenario",
            formatter=format_money,
        )
    )

    first = next(iter(results.values()))
    outlays = first.costs.outlays_by_technique
    total_outlays = first.costs.total_outlays

    # Paper: outlays "split roughly evenly between the foreground
    # workload, split mirroring and tape backup".
    for name in ("foreground workload", "split mirror", "backup"):
        assert 0.1 < outlays[name] / total_outlays < 0.6, name
    # "...with negligible contribution from remote vaulting."
    assert outlays["remote vaulting"] / total_outlays < 0.08

    # Paper: total outlays ~$0.97M/yr (ours within 25%, see EXPERIMENTS.md).
    assert total_outlays == pytest.approx(0.97e6, rel=0.25)

    # Penalties (especially data-loss penalties) dominate for hardware
    # failures.
    for fragment in ("array", "site"):
        assessment = next(a for k, a in results.items() if fragment in k)
        assert assessment.costs.total_penalties > 5 * total_outlays
        assert assessment.costs.loss_penalty > 10 * assessment.costs.outage_penalty

    # Paper totals: $11.94M (array), $71.94M (site).
    array_total = next(a for k, a in results.items() if "array" in k).total_cost
    site_total = next(a for k, a in results.items() if "site" in k).total_cost
    assert array_total == pytest.approx(11.94e6, rel=0.1)
    assert site_total == pytest.approx(71.94e6, rel=0.1)
